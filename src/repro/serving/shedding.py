"""Deadline-based load shedding.

The paper observes that past the saturation point "requests will accumulate
in the message queue … its latency will gradually tend to infinity and
cause the network packet loss."  Production front-ends don't let that
happen: they shed load.  This module adds the standard mechanism — drop any
request whose age already exceeds its deadline when it reaches the
scheduler — so an overloaded server keeps serving *fresh* requests at
bounded latency instead of serving everyone infinitely late.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .metrics import LatencyStats, ServingMetrics, response_throughput
from .mq import MessageQueue
from .policies import HungryPolicy, TriggerPolicy
from .request import Request, RequestState
from .scheduler import BatchScheduler, CostFn, batch_execution_cost


@dataclass(frozen=True)
class SheddingMetrics:
    """Serving outcome under load shedding."""

    serving: ServingMetrics
    dropped: int

    @property
    def drop_rate(self) -> float:
        return self.dropped / max(1, self.serving.offered)

    @property
    def goodput(self) -> float:
        """Served responses per second (the throughput of non-dropped work)."""
        return self.serving.response_throughput


def simulate_serving_with_shedding(
    requests: Sequence[Request],
    scheduler: BatchScheduler,
    cost_fn: CostFn,
    deadline_s: float,
    max_batch: int = 20,
    policy: Optional[TriggerPolicy] = None,
    duration_s: Optional[float] = None,
    system_name: str = "shedding",
) -> SheddingMetrics:
    """Discrete-event serving where stale requests are dropped.

    A request is shed when, at the moment a scheduling round starts, its
    age already exceeds ``deadline_s`` (it could not possibly be answered
    in time).  Dropped requests never reach the model; served requests'
    latency statistics therefore stay bounded near the deadline.
    """
    if not requests:
        raise ValueError("need at least one request to simulate")
    if deadline_s <= 0:
        raise ValueError(f"deadline_s must be positive, got {deadline_s}")
    policy = policy if policy is not None else HungryPolicy()
    arrivals: List[Request] = sorted(requests, key=lambda r: r.arrival_s)
    horizon = duration_s if duration_s is not None else arrivals[-1].arrival_s
    if horizon <= 0:
        raise ValueError(f"duration must be positive, got {horizon}")

    queue = MessageQueue()
    clock = 0.0
    next_arrival = 0
    n = len(arrivals)
    dropped: List[Request] = []

    def ingest(now: float) -> None:
        nonlocal next_arrival
        while next_arrival < n and arrivals[next_arrival].arrival_s <= now:
            queue.push(arrivals[next_arrival])
            next_arrival += 1

    def take_fresh(now: float) -> List[Request]:
        """Drain the queue, shedding requests already past their deadline."""
        fresh: List[Request] = []
        for request in queue.drain(None):
            if now - request.arrival_s > deadline_s:
                request.state = RequestState.SHED
                dropped.append(request)
            else:
                fresh.append(request)
        return fresh

    from .request import make_batch

    ingest(clock)
    while next_arrival < n or queue:
        if queue and policy.should_schedule(queue, clock):
            fresh = take_fresh(clock)
            if fresh:
                for batch in scheduler.schedule(fresh, cost_fn, max_batch):
                    # Re-check freshness at dispatch: members that went
                    # stale while earlier batches of this round executed
                    # are shed rather than served hopelessly late.
                    alive: List[Request] = []
                    for r in batch.requests:
                        if clock - r.arrival_s > deadline_s:
                            r.state = RequestState.SHED
                            dropped.append(r)
                        else:
                            alive.append(r)
                    if not alive:
                        continue
                    live_batch = (
                        batch if len(alive) == len(batch.requests)
                        else make_batch(alive)
                    )
                    exec_s = batch_execution_cost(live_batch, cost_fn)
                    for r in live_batch.requests:
                        r.start_s = clock
                    clock += exec_s
                    for r in live_batch.requests:
                        r.resolve(RequestState.COMPLETED, clock)
                    ingest(clock)
            continue
        if next_arrival < n:
            clock = max(clock, arrivals[next_arrival].arrival_s)
            ingest(clock)
        else:
            break

    served = [r for r in arrivals if r.completion_s is not None]
    throughput = response_throughput(arrivals, horizon * 0.1, horizon)
    serving = ServingMetrics(
        system=system_name,
        request_rate=n / horizon,
        response_throughput=throughput,
        latency=LatencyStats.from_requests(served),
        saturated=len(dropped) > 0,
        completed=len(served),
        offered=n,
        backlog_at_end=0,
    )
    return SheddingMetrics(serving=serving, dropped=len(dropped))
