"""repro — reproduction of *TurboTransformers: An Efficient GPU Serving
System For Transformer Models* (Fang et al., PPoPP 2021).

Subpackages
-----------
``repro.gpusim``
    Simulated-GPU substrate: device specs, warp/instruction model,
    roofline kernel costs (stands in for the paper's V100/RTX 2060/M40).
``repro.kernels``
    NumPy numeric kernels (reference and fused variants).
``repro.graph``
    Computation graph, kernel-fusion pass, tensor lifetime analysis.
``repro.memory``
    The sequence-length-aware allocator (Alg. 1+2) and its baselines.
``repro.models``
    BERT / ALBERT / Seq2Seq-decoder graphs and numeric forwards.
``repro.runtime``
    The Turbo runtime and the five baseline runtimes of Table 1.
``repro.serving``
    Message queue, response cache, DP batch scheduler (Alg. 3),
    trigger policies and the discrete-event serving simulator.
``repro.observability``
    Metrics registry (counters/gauges/histograms) and the request/kernel
    tracer with Chrome ``trace_event`` export (``python -m repro trace``).
``repro.text``
    WordPiece tokenizer + classification head (the §6.2 application).
``repro.experiments``
    One module per paper table/figure (see DESIGN.md §4).
"""

__version__ = "1.0.0"

from . import (
    graph,
    gpusim,
    kernels,
    memory,
    models,
    observability,
    runtime,
    serving,
    text,
)

__all__ = [
    "gpusim",
    "kernels",
    "graph",
    "memory",
    "models",
    "observability",
    "runtime",
    "serving",
    "text",
    "__version__",
]
