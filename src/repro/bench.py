"""``python -m repro bench``: wall-clock benchmarks of the host fast path.

The paper's thesis is that host-side work (cost lookup, allocation
planning, batch scheduling) must stay negligible next to kernel time.
This harness times the *simulator's own* host path — the compiled cost
models, the allocation-plan cache, and the pruned DP scheduler — against
the interpretive/uncached baselines they replaced, and writes the result
to ``BENCH_host.json`` so the repo carries a perf trajectory.

Each section runs the identical deterministic workload through a *fast*
and a *baseline* configuration and records

* ``counters`` — workload sizes, cache hit/miss totals, digests of the
  produced tables/schedules.  Every counter is a pure function of the
  (profile, seed) inputs: two runs of the same bench produce identical
  counter trees, which CI asserts with ``repro bench --diff``.  The
  counters also embed the equivalence checks — the fast path must
  reproduce the baseline's outputs bit for bit before its time is
  accepted.
* ``wallclock`` — elapsed seconds and derived throughputs/speedups.
  These naturally vary run to run and are excluded from the diff.

Baselines are the *seed implementations*: the interpretive per-node cost
walk (``use_compiled=False``), no records memo, no plan cache, the
original object-walking Algorithm 2 gap search
(``TurboAllocator(gap_search="reference")``), and the unmemoized O(n·B)
DP scheduler.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

#: Grid/workload sizes per profile.  ``smoke`` finishes in a few seconds
#: (CI); ``full`` is the acceptance configuration behind the committed
#: ``BENCH_host.json``.
PROFILES: Dict[str, Dict[str, object]] = {
    "smoke": {
        "grid_max_batch": 8,
        "grid_length_step": 64,
        "grid_max_length": 512,
        "plan_shapes": 12,
        "plan_passes": 3,
        "sched_rounds": 60,
        "sched_queue": 40,
        "sched_max_batch": 12,
        "fig12_rates": (100.0, 300.0),
        "fig12_duration_s": 2.0,
        "fig12_max_len": 128,
        "fig12_max_batch": 8,
        "fig12_model": "tiny",
    },
    "full": {
        "grid_max_batch": 20,
        "grid_length_step": 16,
        "grid_max_length": 512,
        "plan_shapes": 48,
        "plan_passes": 3,
        "sched_rounds": 200,
        "sched_queue": 120,
        "sched_max_batch": 20,
        "fig12_rates": (20.0, 60.0, 150.0, 400.0),
        "fig12_duration_s": 5.0,
        "fig12_max_len": 256,
        "fig12_max_batch": 16,
        "fig12_model": "base",
    },
    # Generative serving: request-level DP vs iteration-level continuous
    # batching over the same workload (writes BENCH_gen.json).
    "gen": {
        "gen_rates": (300.0, 1200.0),
        "gen_duration_s": 1.0,
        "gen_model": "tiny",
        "gen_mix_mean": 16.0,
        "gen_mix_max": 96,
        "gen_capacity_tokens": 4096,
        "gen_max_batch": 8,
        "gen_chunk_tokens": 512,
    },
}

BENCH_SCHEMA = "repro.bench.host/v1"
BENCH_GEN_SCHEMA = "repro.bench.gen/v1"

#: Fields of the payload compared by ``--diff`` (everything except the
#: run-to-run wall-clock measurements and what derives from them).
DETERMINISTIC_KEYS = ("schema", "profile", "seed", "config", "counters")


def _now() -> float:
    return time.perf_counter()  # repro: allow(DET402) bench measures wall time


def _digest(obj: object) -> str:
    """Stable digest of a JSON-serializable object (repr of floats is
    exact, so bit-identical inputs give identical digests)."""
    payload = json.dumps(obj, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


# -- runtime configurations ---------------------------------------------------


def _baseline_mode(runtime) -> None:
    """Put a runtime into the seed (pre-fast-path) configuration."""
    runtime.use_compiled = False
    runtime.memoize_records = False
    allocator = getattr(runtime, "allocator", None)
    if allocator is not None and hasattr(allocator, "plan_cache"):
        allocator.plan_cache = None
    if allocator is not None and hasattr(allocator, "gap_search"):
        allocator.gap_search = "reference"


def _table_cells(table) -> Dict[str, float]:
    return {
        f"{length}x{batch}": table.cost(length, batch)
        for length in table.lengths
        for batch in range(1, table.max_batch + 1)
    }


# -- sections -----------------------------------------------------------------


def _bench_grid(profile: Dict[str, object]) -> Dict[str, Dict[str, object]]:
    """CostTable full-grid profile: the warm-up sweep of Algorithm 3."""
    from .runtime import turbo_runtime, warmup_profile

    kwargs = dict(
        max_batch=profile["grid_max_batch"],
        max_length=profile["grid_max_length"],
        length_step=profile["grid_length_step"],
    )

    baseline_rt = turbo_runtime()
    _baseline_mode(baseline_rt)
    t0 = _now()
    baseline_table = warmup_profile(baseline_rt, **kwargs)
    baseline_s = _now() - t0

    fast_rt = turbo_runtime()
    t0 = _now()
    fast_table = warmup_profile(fast_rt, **kwargs)
    fast_s = _now() - t0

    baseline_cells = _table_cells(baseline_table)
    fast_cells = _table_cells(fast_table)
    cells = len(fast_cells)
    return {
        "counters": {
            "cells": cells,
            "identical_tables": baseline_cells == fast_cells,
            "table_digest": _digest(fast_cells),
            "host_path": fast_rt.host_path_stats(),
        },
        "wallclock": {
            "baseline_s": baseline_s,
            "fast_s": fast_s,
            "baseline_latency_calls_per_s": cells / baseline_s,
            "fast_latency_calls_per_s": cells / fast_s,
            "speedup": baseline_s / fast_s,
        },
    }


def _plan_workload(profile: Dict[str, object], seed: int):
    """Deterministic per-shape usage-record lists for the allocator bench."""
    import random

    from .graph.lifetime import tensor_usage_records
    from .models import bert_base, build_encoder_graph

    graph = build_encoder_graph(bert_base())
    rng = random.Random(seed)
    shapes = [
        (rng.randrange(1, 13), rng.randrange(1, 33) * 16)
        for _ in range(profile["plan_shapes"])
    ]
    return [
        tensor_usage_records(graph, {"batch": b, "seq": s}) for b, s in shapes
    ]


def _run_plans(allocator, workload, passes: int) -> Dict[str, object]:
    outcomes = []
    for _ in range(passes):
        for records in workload:
            allocation = allocator.process_request(records)
            outcomes.append(
                (allocation.new_bytes, allocation.footprint_bytes,
                 allocation.peak_bytes, allocation.stall_s)
            )
    return {
        "outcome_digest": _digest([list(o) for o in outcomes]),
        "plan_hits": allocator.plan_hits,
        "plan_misses": allocator.plan_misses,
        "chunks_released": allocator.chunks_released,
    }


def _bench_plans(profile: Dict[str, object], seed: int) -> Dict[str, Dict[str, object]]:
    """Allocation planning throughput: plan cache + tuple-scan gap search
    vs. the uncached object-walking baseline, identical outcomes."""
    from .gpusim.memory import DeviceMemory
    from .memory import PlanCache, TurboAllocator

    workload = _plan_workload(profile, seed)
    passes = profile["plan_passes"]
    plans = len(workload) * passes

    baseline_alloc = TurboAllocator(DeviceMemory(), plan_cache=None,
                                    gap_search="reference")
    t0 = _now()
    baseline = _run_plans(baseline_alloc, workload, passes)
    baseline_s = _now() - t0

    fast_alloc = TurboAllocator(DeviceMemory(), plan_cache=PlanCache())
    t0 = _now()
    fast = _run_plans(fast_alloc, workload, passes)
    fast_s = _now() - t0

    return {
        "counters": {
            "plans": plans,
            "records_per_plan": len(workload[0]),
            "identical_outcomes": baseline == fast,
            "baseline": baseline,
            "fast": fast,
            "plan_cache": fast_alloc.plan_cache.stats(),
        },
        "wallclock": {
            "baseline_s": baseline_s,
            "fast_s": fast_s,
            "baseline_plans_per_s": plans / baseline_s,
            "fast_plans_per_s": plans / fast_s,
            "speedup": baseline_s / fast_s,
        },
    }


def _sched_workload(profile: Dict[str, object], seed: int):
    import random

    from .serving.request import Request

    rng = random.Random(seed)
    rounds = []
    queue: List[Request] = []
    req_id = 0
    for _ in range(profile["sched_rounds"]):
        # A hungry server's queue: grows, then periodically drains.
        if queue and rng.random() < 0.3:
            queue = queue[len(queue) // 2:]
        for _ in range(rng.randrange(1, profile["sched_queue"] // 4 + 2)):
            queue.append(Request(req_id=req_id,
                                 seq_len=rng.randrange(1, 33) * 16,
                                 arrival_s=0.0))
            req_id += 1
        rounds.append(list(queue[: profile["sched_queue"]]))
    return rounds


def _run_scheduler(scheduler, rounds, cost_fn, max_batch: int) -> Dict[str, object]:
    partitions = []
    for queue in rounds:
        batches = scheduler.schedule(queue, cost_fn, max_batch)
        partitions.append(
            [tuple(r.req_id for r in b.requests) for b in batches]
        )
    return {
        "partition_digest": _digest([[list(p) for p in ps] for ps in partitions]),
        "batches": sum(len(p) for p in partitions),
    }


def _bench_scheduler(profile: Dict[str, object], seed: int) -> Dict[str, Dict[str, object]]:
    """Scheduling rounds/sec: pruned+bucketed+incremental DP vs. Alg. 3."""
    from .serving.scheduler import DPBatchScheduler, PrunedDPBatchScheduler

    rounds = _sched_workload(profile, seed)
    max_batch = profile["sched_max_batch"]

    def cost_fn(length: int, batch: int) -> float:
        # Closed-form monotone stand-in for a profiled table.
        return (1.0 + 0.002 * length) * (0.3 + 0.1 * batch) * 1e-3

    baseline_sched = DPBatchScheduler()
    t0 = _now()
    baseline = _run_scheduler(baseline_sched, rounds, cost_fn, max_batch)
    baseline_s = _now() - t0

    fast_sched = PrunedDPBatchScheduler()
    t0 = _now()
    fast = _run_scheduler(fast_sched, rounds, cost_fn, max_batch)
    fast_s = _now() - t0

    return {
        "counters": {
            "rounds": len(rounds),
            "requests": sum(len(q) for q in rounds),
            "identical_partitions": baseline == fast,
            "partition_digest": fast["partition_digest"],
            "batches": fast["batches"],
            "fast_path": fast_sched.stats(),
        },
        "wallclock": {
            "baseline_s": baseline_s,
            "fast_s": fast_s,
            "baseline_rounds_per_s": len(rounds) / baseline_s,
            "fast_rounds_per_s": len(rounds) / fast_s,
            "speedup": baseline_s / fast_s,
        },
    }


def _fig12_sweep(profile: Dict[str, object], seed: int, fast: bool) -> Tuple[Dict[str, object], float]:
    """One end-to-end fig12-style run: warm the turbo cost table, then
    serve a Poisson workload at each offered rate with DP batching."""
    from .models import bert_base, build_encoder_graph, tiny_bert
    from .runtime import turbo_runtime, warmup_profile
    from .serving import (
        MIN_LEN,
        ServingConfig,
        generate_requests,
        normal_lengths,
        simulate_serving,
    )
    from .serving.scheduler import DPBatchScheduler, PrunedDPBatchScheduler

    config = tiny_bert() if profile["fig12_model"] == "tiny" else bert_base()
    max_len = profile["fig12_max_len"]
    max_batch = profile["fig12_max_batch"]

    t0 = _now()
    runtime = turbo_runtime(graph=build_encoder_graph(config))
    if not fast:
        _baseline_mode(runtime)
    table = warmup_profile(runtime, max_batch=max_batch, max_length=max_len,
                           length_step=16)
    scheduler = (PrunedDPBatchScheduler() if fast else DPBatchScheduler())

    def lengths(rng, n):
        return normal_lengths(rng, n, lo=MIN_LEN, hi=max_len)

    points = {}
    for rate in profile["fig12_rates"]:
        requests = generate_requests(rate, profile["fig12_duration_s"],
                                     seed=seed, length_sampler=lengths)
        metrics = simulate_serving(
            requests, scheduler, table.cost,
            config=ServingConfig(max_batch=max_batch),
            duration_s=profile["fig12_duration_s"],
            system_name="Turbo-DP-Batch",
        )
        points[str(rate)] = {
            "offered": metrics.offered,
            "completed": metrics.completed,
            "batches": metrics.batches_executed,
            "saturated": metrics.saturated,
        }
    elapsed = _now() - t0
    return {"points": points, "table_digest": _digest(_table_cells(table))}, elapsed


def _bench_fig12(profile: Dict[str, object], seed: int) -> Dict[str, Dict[str, object]]:
    baseline, baseline_s = _fig12_sweep(profile, seed, fast=False)
    fast, fast_s = _fig12_sweep(profile, seed, fast=True)
    return {
        "counters": {
            "rates": list(map(float, profile["fig12_rates"])),
            "identical_serving": baseline == fast,
            "points": fast["points"],
            "table_digest": fast["table_digest"],
        },
        "wallclock": {
            "baseline_s": baseline_s,
            "fast_s": fast_s,
            "speedup": baseline_s / fast_s,
        },
    }


def _gen_point_summary(m) -> Dict[str, object]:
    """Deterministic scalar view of one generative serving run."""
    return {
        "offered": m.offered,
        "completed": m.completed,
        "response_throughput": m.response_throughput,
        "ttft_avg_ms": getattr(m, "ttft", None).avg_ms
        if hasattr(m, "ttft") else None,
        "ttft_p99_ms": getattr(m, "ttft", None).p99_ms
        if hasattr(m, "ttft") else None,
        "tpot_ms_avg": getattr(m, "tpot_ms_avg", None),
        "tokens": getattr(m, "tokens_generated", None),
        "decode_steps": getattr(m, "decode_steps", None),
        "kv_denials": getattr(m, "kv_denials", None),
        "prefill_chunks": getattr(m, "prefill_chunks", None),
        "overlap_saved_s": getattr(m, "overlap_saved_s", None),
        "stall_s": getattr(m, "stall_s", None),
        "prefix_hits": getattr(m, "prefix_hits", None),
        "prefix_tokens_reused": getattr(m, "prefix_tokens_reused", None),
        "prefill_flops_saved": getattr(m, "prefill_flops_saved", None),
        "saturated": m.saturated,
    }


def _gen_token_stream(requests) -> List[tuple]:
    """Per-request outcome triples — the byte-identity unit of the
    chunked-overlap equivalence gate (timing may differ, tokens may not)."""
    return [(r.req_id, r.state.name, r.generated)
            for r in sorted(requests, key=lambda r: r.req_id)]


def verify_overlap_equivalence(profile_name: str = "gen", seed: int = 0,
                               progress: Optional[Callable[[str], None]] = None,
                               ) -> List[str]:
    """``bench --verify-overlap``: the chunked-overlap equivalence gate.

    Runs the gen profile workload through the continuous server twice per
    rate — chunking off vs ``gen_chunk_tokens`` — and checks that

    * per-request token streams are identical (same req_id/state/token
      count triples — overlap moves timing, never tokens);
    * completion sets are identical;
    * TTFT p99 does not regress with overlap on.

    Returns a list of problems (empty = gate passed).
    """
    from .experiments.gen_serving_throughput import GenServingBench, OutputMix

    profile = PROFILES[profile_name]
    if "gen_rates" not in profile:
        raise ValueError(
            f"profile {profile_name!r} has no generative serving section"
        )
    say = progress or (lambda _msg: None)
    bench = GenServingBench(
        model=profile["gen_model"],
        capacity_tokens=profile["gen_capacity_tokens"],
        max_batch=profile["gen_max_batch"],
        chunk_tokens=profile["gen_chunk_tokens"],
    )
    mix = OutputMix("bench", mean_new_tokens=profile["gen_mix_mean"],
                    max_new_tokens=profile["gen_mix_max"])
    duration_s = profile["gen_duration_s"]
    problems: List[str] = []
    for rate in profile["gen_rates"]:
        off = bench.workload(rate, duration_s, seed, mix)
        m_off = bench.run_continuous(off, duration_s)
        on = bench.workload(rate, duration_s, seed, mix)
        m_on = bench.run_continuous(on, duration_s,
                                    chunk_tokens=bench.chunk_tokens)
        if _gen_token_stream(off) != _gen_token_stream(on):
            problems.append(
                f"rate {rate:g}: per-request token streams differ with "
                f"chunking on"
            )
        done_off = sorted(r.req_id for r in off if r.is_completed)
        done_on = sorted(r.req_id for r in on if r.is_completed)
        if done_off != done_on:
            problems.append(f"rate {rate:g}: completion sets differ")
        # Tiny relative slack: chunk costs telescope to the unchunked
        # pass only up to float association.
        if m_on.ttft.p99_ms > m_off.ttft.p99_ms * (1.0 + 1e-9):
            problems.append(
                f"rate {rate:g}: TTFT p99 regressed with overlap on "
                f"({m_off.ttft.p99_ms:.4f} ms -> {m_on.ttft.p99_ms:.4f} ms)"
            )
        say(f"  rate {rate:g}: streams identical="
            f"{done_off == done_on and _gen_token_stream(off) == _gen_token_stream(on)}, "
            f"ttft p99 {m_off.ttft.p99_ms:.3f} -> {m_on.ttft.p99_ms:.3f} ms, "
            f"chunks {m_on.prefill_chunks}, "
            f"overlap saved {m_on.overlap_saved_s * 1e3:.1f} ms")
    return problems


#: Sharing ratios for the prefix-cache sweep and its equivalence gate.
PREFIX_SHARING_RATIOS: Tuple[float, ...] = (0.0, 0.5, 0.9)


def _prefix_workload(rate: float, duration_s: float, seed: int, mix,
                     sharing_ratio: float):
    """Multi-tenant prefix-population workload with the profile's output
    mix; lengths are identical across sharing ratios by construction."""
    from .serving import (
        generate_prefix_population_requests,
        geometric_output_lengths,
    )

    return generate_prefix_population_requests(
        rate, duration_s, seed=seed, sharing_ratio=sharing_ratio,
        output_sampler=lambda rng, n: geometric_output_lengths(
            rng, n, mean=mix.mean_new_tokens, hi=mix.max_new_tokens),
    )


def verify_prefix_equivalence(profile_name: str = "gen", seed: int = 0,
                              progress: Optional[Callable[[str], None]] = None,
                              ) -> List[str]:
    """``bench --verify-prefix``: the prefix-cache equivalence gate.

    Runs multi-tenant prefix-population workloads through the continuous
    server three ways per (rate, sharing ratio) — cache off, cache on,
    cache on + chunked prefill — and checks that

    * per-request token streams are identical in all three runs (the
      cache skips *work*, never changes *tokens*);
    * admission orders and completion sets are identical;
    * TTFT p99 does not regress with the cache on.

    Returns a list of problems (empty = gate passed).
    """
    from .experiments.gen_serving_throughput import GenServingBench, OutputMix

    profile = PROFILES[profile_name]
    if "gen_rates" not in profile:
        raise ValueError(
            f"profile {profile_name!r} has no generative serving section"
        )
    say = progress or (lambda _msg: None)
    bench = GenServingBench(
        model=profile["gen_model"],
        capacity_tokens=profile["gen_capacity_tokens"],
        max_batch=profile["gen_max_batch"],
        chunk_tokens=profile["gen_chunk_tokens"],
    )
    mix = OutputMix("bench", mean_new_tokens=profile["gen_mix_mean"],
                    max_new_tokens=profile["gen_mix_max"])
    duration_s = profile["gen_duration_s"]
    problems: List[str] = []
    for rate in profile["gen_rates"]:
        for sharing in PREFIX_SHARING_RATIOS:
            tag = f"rate {rate:g} sharing {sharing:g}"
            runs = {}
            orders = {}
            metrics = {}
            for label, cache, chunk in (
                ("off", False, None),
                ("on", True, None),
                ("on-chunked", True, bench.chunk_tokens),
            ):
                reqs = _prefix_workload(rate, duration_s, seed, mix, sharing)
                srv = bench.make_continuous_server(chunk_tokens=chunk,
                                                   prefix_cache=cache)
                metrics[label] = srv.serve(reqs, duration_s=duration_s)
                runs[label] = _gen_token_stream(reqs)
                orders[label] = list(srv.admission_order)
            for label in ("on", "on-chunked"):
                if runs[label] != runs["off"]:
                    problems.append(
                        f"{tag}: token streams differ with cache on "
                        f"({label})"
                    )
                if orders[label] != orders["off"]:
                    problems.append(
                        f"{tag}: admission order differs with cache on "
                        f"({label})"
                    )
            p99_off = metrics["off"].ttft.p99_ms
            p99_on = metrics["on"].ttft.p99_ms
            if p99_on > p99_off * (1.0 + 1e-9):
                problems.append(
                    f"{tag}: TTFT p99 regressed with prefix cache on "
                    f"({p99_off:.4f} ms -> {p99_on:.4f} ms)"
                )
            say(f"  {tag}: streams identical="
                f"{runs['on'] == runs['off'] == runs['on-chunked']}, "
                f"ttft p99 {p99_off:.3f} -> {p99_on:.3f} ms, "
                f"hits {metrics['on'].prefix_hits}, "
                f"reused {metrics['on'].prefix_tokens_reused} tok")
    return problems


def _gen_sweep(bench, mix, rates, duration_s: float, seed: int,
               system: str) -> Dict[str, object]:
    points = {
        str(rate): _gen_point_summary(
            bench.run_point(system, rate, duration_s, seed, mix)
        )
        for rate in rates
    }
    return {"points": points, "digest": _digest(points)}


def _bench_gen(profile: Dict[str, object], seed: int) -> Dict[str, Dict[str, object]]:
    """Generative serving: iteration-level continuous batching (fast) vs
    the request-level DP baseline, plus a determinism double-run."""
    from .experiments.gen_serving_throughput import GenServingBench, OutputMix

    bench = GenServingBench(
        model=profile["gen_model"],
        capacity_tokens=profile["gen_capacity_tokens"],
        max_batch=profile["gen_max_batch"],
        chunk_tokens=profile["gen_chunk_tokens"],
    )
    mix = OutputMix("bench", mean_new_tokens=profile["gen_mix_mean"],
                    max_new_tokens=profile["gen_mix_max"])
    rates = profile["gen_rates"]
    duration_s = profile["gen_duration_s"]

    t0 = _now()
    baseline = _gen_sweep(bench, mix, rates, duration_s, seed,
                          "request-level")
    baseline_s = _now() - t0

    t0 = _now()
    fast = _gen_sweep(bench, mix, rates, duration_s, seed, "continuous")
    fast_s = _now() - t0
    # Simulated time is a pure function of the inputs: an immediate rerun
    # must reproduce the sweep bit for bit (fresh arena per run).
    rerun = _gen_sweep(bench, mix, rates, duration_s, seed, "continuous")

    # Chunked prefill + dual-stream overlap over the same workloads: token
    # streams must be identical to the unchunked sweep (checked per rate
    # below); timing — the TTFT tail in particular — is where it wins.
    t0 = _now()
    chunked = _gen_sweep(bench, mix, rates, duration_s, seed,
                         "continuous-chunked")
    chunked_s = _now() - t0

    identical_streams = True
    for rate in rates:
        off = bench.workload(rate, duration_s, seed, mix)
        bench.run_continuous(off, duration_s)
        on = bench.workload(rate, duration_s, seed, mix)
        bench.run_continuous(on, duration_s, chunk_tokens=bench.chunk_tokens)
        identical_streams = identical_streams and \
            _gen_token_stream(off) == _gen_token_stream(on)

    # Prefix-cache sweep: multi-tenant prefix-population workloads at the
    # top rate, cache off vs on per sharing ratio.  Token streams must be
    # byte-identical — the cache skips prefill work, never changes tokens.
    t0 = _now()
    top_rate = max(rates)
    prefix_points: Dict[str, object] = {}
    identical_prefix_streams = True
    for sharing in PREFIX_SHARING_RATIOS:
        off = _prefix_workload(top_rate, duration_s, seed, mix, sharing)
        m_off = bench.run_continuous(off, duration_s)
        on = _prefix_workload(top_rate, duration_s, seed, mix, sharing)
        m_on = bench.run_continuous(on, duration_s, prefix_cache=True)
        identical_prefix_streams = identical_prefix_streams and \
            _gen_token_stream(off) == _gen_token_stream(on)
        point = _gen_point_summary(m_on)
        point["ttft_p99_ms_cache_off"] = m_off.ttft.p99_ms
        prefix_points[str(sharing)] = point
    prefix_s = _now() - t0

    top = str(max(rates))
    gain = (fast["points"][top]["response_throughput"]
            / max(baseline["points"][top]["response_throughput"], 1e-9))
    p99_gain = (fast["points"][top]["ttft_p99_ms"]
                / max(chunked["points"][top]["ttft_p99_ms"], 1e-9))
    return {
        "counters": {
            "rates": list(map(float, rates)),
            "identical_reruns": fast == rerun,
            "identical_token_streams": identical_streams,
            "identical_prefix_streams": identical_prefix_streams,
            "request_level": baseline["points"],
            "continuous": fast["points"],
            "continuous_chunked": chunked["points"],
            "continuous_prefix": prefix_points,
            "continuous_digest": fast["digest"],
            "request_level_digest": baseline["digest"],
            "continuous_chunked_digest": chunked["digest"],
            "continuous_prefix_digest": _digest(prefix_points),
            "throughput_gain_at_top_rate": gain,
            "ttft_p99_gain_at_top_rate": p99_gain,
        },
        "wallclock": {
            "baseline_s": baseline_s,
            "fast_s": fast_s,
            "chunked_s": chunked_s,
            "prefix_s": prefix_s,
            "speedup": baseline_s / fast_s,
        },
    }


# -- top level ----------------------------------------------------------------


def run_bench(profile_name: str = "smoke", seed: int = 0,
              progress: Optional[Callable[[str], None]] = None) -> Dict[str, object]:
    """Run every section; returns the ``BENCH_host.json`` payload."""
    if profile_name not in PROFILES:
        raise ValueError(
            f"profile must be one of {sorted(PROFILES)}, got {profile_name!r}"
        )
    profile = PROFILES[profile_name]
    say = progress or (lambda _msg: None)

    sections: Dict[str, Dict[str, object]] = {}
    if "gen_rates" in profile:
        say("gen: generative serving, request-level vs continuous ...")
        sections["gen"] = _bench_gen(profile, seed)
    else:
        say("grid: CostTable full-grid profile ...")
        sections["grid"] = _bench_grid(profile)
        say("plans: allocation planning throughput ...")
        sections["plans"] = _bench_plans(profile, seed)
        say("scheduler: DP batching rounds ...")
        sections["scheduler"] = _bench_scheduler(profile, seed)
        say("fig12: end-to-end serving sweep ...")
        sections["fig12"] = _bench_fig12(profile, seed)

    payload: Dict[str, object] = {
        "schema": BENCH_GEN_SCHEMA if "gen_rates" in profile else BENCH_SCHEMA,
        "profile": profile_name,
        "seed": seed,
        "config": {k: (list(v) if isinstance(v, tuple) else v)
                   for k, v in profile.items()},
        "counters": {name: s["counters"] for name, s in sections.items()},
        "wallclock": {name: s["wallclock"] for name, s in sections.items()},
        "speedups": {name: s["wallclock"]["speedup"]
                     for name, s in sections.items()},
        "equivalence_ok": all(
            v for name, s in sections.items()
            for k, v in s["counters"].items() if k.startswith("identical_")
        ),
    }
    return payload


def diff_bench(a: Dict[str, object], b: Dict[str, object],
               rel_tol: float = 0.0) -> List[str]:
    """Compare the deterministic fields of two bench payloads.

    Returns a list of human-readable differences (empty == identical).
    Wall-clock fields (and the speedups derived from them) are excluded —
    they legitimately vary run to run.

    Every mismatching metric is reported (not just the first), and
    numeric mismatches carry their **relative delta against the recorded
    value** next to the tolerance, so a CI failure log shows at a glance
    whether a run drifted by 1e-12 or by 40%.  ``rel_tol`` accepts
    numeric drift up to that relative delta (default 0: bit-exact).
    """
    if rel_tol < 0:
        raise ValueError(f"rel_tol must be >= 0, got {rel_tol}")
    problems: List[str] = []

    def numeric(v: object) -> bool:
        return isinstance(v, (int, float)) and not isinstance(v, bool)

    def walk(prefix: str, x: object, y: object) -> None:
        if isinstance(x, dict) and isinstance(y, dict):
            for key in sorted(set(x) | set(y)):
                if key not in x:
                    problems.append(f"{prefix}{key}: missing in first run")
                elif key not in y:
                    problems.append(f"{prefix}{key}: missing in second run")
                else:
                    walk(f"{prefix}{key}.", x[key], y[key])
        elif numeric(x) and numeric(y):
            if x == y:
                return
            denom = max(abs(x), abs(y))
            rel = abs(x - y) / denom if denom else 0.0
            if rel <= rel_tol:
                return
            problems.append(
                f"{prefix[:-1]}: recorded {x!r}, observed {y!r} "
                f"(rel delta {rel:.3e}, tol {rel_tol:.3e})"
            )
        elif x != y:
            problems.append(f"{prefix[:-1]}: {x!r} != {y!r}")

    for key in DETERMINISTIC_KEYS:
        walk(f"{key}.", a.get(key), b.get(key))
    return problems


def save_bench(payload: Dict[str, object], path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_bench(path: Union[str, Path]) -> Dict[str, object]:
    return json.loads(Path(path).read_text())


def format_bench(payload: Dict[str, object]) -> str:
    lines = [f"repro bench — profile {payload['profile']!r}, "
             f"seed {payload['seed']}"]
    wall = payload["wallclock"]
    for name in wall:
        w = wall[name]
        extra = ""
        if "fast_latency_calls_per_s" in w:
            extra = f", {w['fast_latency_calls_per_s']:,.0f} latency calls/s"
        elif "fast_plans_per_s" in w:
            extra = f", {w['fast_plans_per_s']:,.0f} plans/s"
        elif "fast_rounds_per_s" in w:
            extra = f", {w['fast_rounds_per_s']:,.0f} rounds/s"
        lines.append(
            f"  {name:<10} baseline {w['baseline_s']:7.3f}s   fast "
            f"{w['fast_s']:7.3f}s   speedup {w['speedup']:5.2f}x{extra}"
        )
    gen = payload["counters"].get("gen")
    if gen:
        lines.append(
            f"  gen        continuous vs request-level throughput at "
            f"{max(gen['rates']):,.0f} req/s: "
            f"{gen['throughput_gain_at_top_rate']:.2f}x"
        )
        if "ttft_p99_gain_at_top_rate" in gen:
            lines.append(
                f"  gen        chunked-overlap TTFT p99 at "
                f"{max(gen['rates']):,.0f} req/s: "
                f"{gen['ttft_p99_gain_at_top_rate']:.2f}x lower"
            )
    lines.append(f"  equivalence checks: "
                 f"{'ok' if payload['equivalence_ok'] else 'FAILED'}")
    return "\n".join(lines)


# -- equivalence verifier (``repro bench --verify``) --------------------------


def verify_host_fast_path(seed: int = 0) -> List[str]:
    """Cross-check every fast-path layer against its reference.

    Returns a list of problems (empty == fully equivalent):

    * compiled cost model vs. interpretive ``graph_cost`` for every
      runtime factory, bit-exact per kernel;
    * fast ``latency()`` vs. the seed double-``infer()`` path, bit-exact,
      across a shape grid including padding boundaries;
    * pruned DP partitions vs. ``DPBatchScheduler``, identical;
    * plan-cached allocator vs. uncached, identical outcomes.
    """
    import random

    problems: List[str] = []

    from .runtime import RUNTIME_FACTORIES, verify_equivalence

    shapes = [(1, 1), (1, 16), (1, 17), (2, 63), (2, 64), (2, 65),
              (4, 128), (7, 100), (8, 512)]
    for name, factory in RUNTIME_FACTORIES.items():
        fast_rt = factory()
        bindings = [fast_rt._bindings(b, fast_rt.chars.padded_length(s))
                    for b, s in shapes]
        for msg in verify_equivalence(fast_rt.graph.nodes, bindings,
                                      fast_rt.chars, fast_rt.device):
            problems.append(f"{name}: {msg}")
        ref_rt = factory()
        _baseline_mode(ref_rt)
        for b, s in shapes:
            got = fast_rt.latency(b, s)
            want = ref_rt.latency(b, s)
            if got != want:
                problems.append(
                    f"{name}: latency({b}, {s}) fast {got!r} != "
                    f"reference {want!r}"
                )

    from .serving.request import Request
    from .serving.scheduler import DPBatchScheduler, PrunedDPBatchScheduler

    rng = random.Random(seed)

    def cost_fn(length: int, batch: int) -> float:
        return (1.0 + 0.002 * length) * (0.3 + 0.1 * batch) * 1e-3

    ref_sched = DPBatchScheduler()
    fast_sched = PrunedDPBatchScheduler()
    for trial in range(50):
        queue = [Request(req_id=i, seq_len=rng.randrange(1, 33) * 16,
                         arrival_s=0.0)
                 for i in range(rng.randrange(1, 40))]
        max_batch = rng.randrange(1, 16)
        ref_batches = ref_sched.schedule(queue, cost_fn, max_batch)
        fast_batches = fast_sched.schedule(queue, cost_fn, max_batch)
        ref_part = [tuple(r.req_id for r in b.requests) for b in ref_batches]
        fast_part = [tuple(r.req_id for r in b.requests) for b in fast_batches]
        if ref_part != fast_part:
            problems.append(
                f"scheduler: partition mismatch on trial {trial} "
                f"(n={len(queue)}, max_batch={max_batch})"
            )

    from .gpusim.memory import DeviceMemory
    from .memory import PlanCache, TurboAllocator

    profile = dict(PROFILES["smoke"], plan_shapes=16)
    workload = _plan_workload(profile, seed)
    ref_alloc = TurboAllocator(DeviceMemory(), plan_cache=None,
                               gap_search="reference")
    fast_alloc = TurboAllocator(DeviceMemory(), plan_cache=PlanCache())
    ref_out = _run_plans(ref_alloc, workload, passes=2)
    fast_out = _run_plans(fast_alloc, workload, passes=2)
    if ref_out != fast_out:
        problems.append(
            f"allocator: plan-cache outcomes diverge: {ref_out} != {fast_out}"
        )
    return problems
