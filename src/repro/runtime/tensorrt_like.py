"""NVIDIA TensorRT-like baseline.

The fastest fixed-length competitor (Table 1, Fig. 11 on V100): engine
building autotunes GEMM schedules beyond stock cuBLAS and the dispatch
layer is the leanest of all runtimes — but its reductions are the classical
algorithm, the engine is bound to the build-time input dimension, and the
integration cost is the highest ("hard" usage).
"""

from __future__ import annotations

from typing import Optional

from ..gpusim import RTX_2060, DeviceSpec, ReductionImpl
from ..graph import ComputationGraph
from ..memory import CachingAllocator
from ..models import bert_base, build_encoder_graph
from .base import InferenceRuntime
from .cost import RuntimeCharacteristics

TENSORRT_CHARACTERISTICS = RuntimeCharacteristics(
    name="TensorRT",
    fuse_kernels=True,
    reduction_impl=ReductionImpl.FASTER_TRANSFORMER,
    gemm_tuning=1.05,  # engine-build autotuning recovers GEMM underfill
    host_dispatch_s=3e-6,
    fixed_overhead_s=0.95e-3,
    supports_variable_length=False,
    preprocess_s=300.0,  # engine build
    usage="hard",
)


def tensorrt_runtime(
    graph: Optional[ComputationGraph] = None,
    device: DeviceSpec = RTX_2060,
) -> InferenceRuntime:
    return InferenceRuntime(
        graph=graph if graph is not None else build_encoder_graph(bert_base()),
        chars=TENSORRT_CHARACTERISTICS,
        device=device,
        allocator_factory=CachingAllocator,
    )
