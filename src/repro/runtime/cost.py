"""Graph-node -> kernel-timing mapping.

Each :class:`~repro.graph.OpNode` carries symbolic cost attributes (GEMM
``m/n/k``, reduction ``rows/row_len``, elementwise ``nelems``/pass counts).
Given a request's dim bindings and a runtime's characteristics (fusion,
reduction implementation, GEMM tuning, host dispatch overhead), this module
prices every node with the :mod:`repro.gpusim` models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple, Union

from ..gpusim import (
    DeviceSpec,
    KernelTiming,
    ReductionImpl,
    elementwise_time,
    gemm_time,
    gemm_utilization,
    layernorm_time,
    softmax_time,
)
from ..graph import DimBindings, OpNode, OpType, resolve_dim

DimProduct = Union[int, str, Sequence[Union[int, str]]]


def resolve_product(value: DimProduct, bindings: DimBindings) -> int:
    """Resolve an attr that is a dim, or a product of dims, to an int.

    ``("batch", 12, "seq")`` under ``{"batch": 2, "seq": 10}`` -> 240.
    """
    if isinstance(value, (int, str)):
        return resolve_dim(value, bindings)
    result = 1
    for part in value:
        result *= resolve_dim(part, bindings)
    return result


@dataclass(frozen=True)
class RuntimeCharacteristics:
    """How one runtime executes the graph (the Table 1 feature matrix).

    Attributes
    ----------
    name: display name used in experiment tables.
    fuse_kernels: run the fusion pass over the graph (Fig. 3).
    reduction_impl: which Softmax/LayerNorm kernels the runtime ships.
    reduction_x_elems: the X of ``warpAllReduceSum_XElem`` (Turbo only).
    gemm_tuning: multiplier on GEMM throughput (TensorRT autotunes > 1;
        conservative code generators < 1).  The boost only helps where the
        GEMM underfills the device — effective efficiency is capped at the
        hand-tuned-library peak, so autotuning wins small/medium problems
        but cannot beat cuBLAS on saturating ones.
    host_dispatch_s: host-side time to dispatch one operator (eager
        frameworks pay Python dispatch; compiled runtimes pay almost none).
        With asynchronous launches the host runs ahead of the device, so a
        whole graph (or one decode step, where the beam search forces a
        sync) costs ``max(n_ops * host_dispatch, sum of kernel times)`` —
        dispatch binds only when the host is the bottleneck.
    fixed_overhead_s: per-inference constant (Python API call, H2D/D2H
        transfer, final stream sync) paid once per request regardless of
        size — why no runtime accelerates 5-token requests (Fig. 10).
    supports_variable_length: can serve a new length without re-tuning.
    preprocess_s: one-time tuning cost when the input dimension changes
        (engine build for TensorRT, XLA compile, FT profile); charged per
        *new* fixed length, never per request.
    pad_to_multiple: fixed-length runtimes pad requests up to a bucket.
    usage: qualitative integration difficulty (Table 1).
    """

    name: str
    fuse_kernels: bool
    reduction_impl: ReductionImpl
    reduction_x_elems: int = 2
    gemm_tuning: float = 1.0
    host_dispatch_s: float = 0.0
    fixed_overhead_s: float = 0.0
    supports_variable_length: bool = True
    preprocess_s: float = 0.0
    pad_to_multiple: int = 1
    usage: str = "easy"
    precision_bytes: int = 4  # 4 = FP32 (the paper); 2 = FP16 extension

    def __post_init__(self) -> None:
        if self.gemm_tuning <= 0:
            raise ValueError(f"gemm_tuning must be positive, got {self.gemm_tuning}")
        if self.reduction_x_elems < 1:
            raise ValueError(f"reduction_x_elems must be >= 1, got {self.reduction_x_elems}")
        if self.pad_to_multiple < 1:
            raise ValueError(f"pad_to_multiple must be >= 1, got {self.pad_to_multiple}")
        if self.precision_bytes not in (2, 4):
            raise ValueError(
                f"precision_bytes must be 2 or 4, got {self.precision_bytes}"
            )

    def padded_length(self, seq_len: int) -> int:
        """Length the runtime actually executes for a request of seq_len."""
        if seq_len <= 0:
            raise ValueError(f"seq_len must be positive, got {seq_len}")
        m = self.pad_to_multiple
        return ((seq_len + m - 1) // m) * m


# -- pricing stage (resolved integer dims -> KernelTiming) -------------------
#
# Node costing is split into two stages: *resolution* (symbolic attrs ->
# concrete ints under the request's dim bindings) and *pricing* (ints ->
# KernelTiming).  The interpretive path below and the compiled path in
# :mod:`repro.runtime.compiled` share these pricing functions, which is what
# makes the compiled fast path bit-identical by construction: both paths
# execute exactly the same floating-point operations on exactly the same
# resolved integers; only the resolution work is moved to compile time.


def price_gemm(
    m: int, n: int, k: int, batch: int,
    chars: RuntimeCharacteristics, device: DeviceSpec, name: str,
) -> KernelTiming:
    """Price a GEMM node from resolved dims (shared by both cost paths)."""
    timing = gemm_time(device, m, n, k, batch=batch, name=name,
                       elem_bytes=chars.precision_bytes)
    if chars.gemm_tuning != 1.0:
        # Boosts (autotuning) only recover underfill: cap at the efficiency
        # a fully-utilized cuBLAS GEMM already achieves.  Derates apply as-is.
        utilization = gemm_utilization(device, m, n, batch)
        effective = min(1.0, utilization * max(chars.gemm_tuning, 1.0))
        effective *= min(chars.gemm_tuning, 1.0)
        scale = effective / utilization  # > 1 speeds up, < 1 slows down
        timing = KernelTiming(
            name=timing.name,
            launch_s=timing.launch_s,
            compute_s=timing.compute_s / scale,
            memory_s=timing.memory_s,
        )
    return timing


def price_reduction(
    rows: int, row_len: int, op_type: OpType, name: str,
    chars: RuntimeCharacteristics, device: DeviceSpec,
) -> KernelTiming:
    """Price a Softmax/LayerNorm node from resolved dims."""
    if op_type is OpType.SOFTMAX:
        timing = softmax_time(device, rows, row_len, chars.reduction_impl,
                              x_elems=chars.reduction_x_elems,
                              elem_bytes=chars.precision_bytes)
    else:
        timing = layernorm_time(device, rows, row_len, chars.reduction_impl,
                                elem_bytes=chars.precision_bytes)
    return KernelTiming(
        name=f"{timing.name}:{name}",
        launch_s=timing.launch_s,
        compute_s=timing.compute_s,
        memory_s=timing.memory_s,
    )


def price_elementwise(
    nelems: int, reads: int, writes: int, flops: float,
    device: DeviceSpec, name: str, elem_bytes: int = 4,
) -> KernelTiming:
    """Price an elementwise-class node from a resolved element count."""
    return elementwise_time(
        device, nelems, reads=reads, writes=writes, flops_per_elem=flops,
        name=name, elem_bytes=elem_bytes,
    )


def elementwise_passes(attrs: Dict[str, Any], fused_region: bool = False
                       ) -> Tuple[int, int, float]:
    """(reads, writes, flops_per_elem) of an ELEMENTWISE node's attrs."""
    if fused_region:
        # Inside a fused kernel intermediates stay in registers: the
        # constituent contributes one data pass total instead of r+w.
        return 1, 0, float(attrs.get("flops_per_elem", 1.0))
    return (int(attrs.get("reads", 1)), int(attrs.get("writes", 1)),
            float(attrs.get("flops_per_elem", 1.0)))


# -- interpretive resolution (attrs resolved on every call) -------------------


def _gemm_node_cost(
    node: OpNode, bindings: DimBindings, chars: RuntimeCharacteristics,
    device: DeviceSpec,
) -> KernelTiming:
    m = resolve_product(node.attrs["m"], bindings)
    n = resolve_product(node.attrs["n"], bindings)
    k = resolve_product(node.attrs["k"], bindings)
    batch = resolve_product(node.attrs.get("batch", 1), bindings)
    return price_gemm(m, n, k, batch, chars, device, f"gemm:{node.name}")


def _reduction_node_cost(
    node: OpNode, bindings: DimBindings, chars: RuntimeCharacteristics,
    device: DeviceSpec, op_type: OpType, name: str, attrs: Dict[str, Any],
) -> KernelTiming:
    rows = resolve_product(attrs["rows"], bindings)
    row_len = resolve_product(attrs["row_len"], bindings)
    return price_reduction(rows, row_len, op_type, name, chars, device)


def _elementwise_node_cost(
    bindings: DimBindings, device: DeviceSpec, name: str,
    attrs: Dict[str, Any], fused_region: bool = False,
    elem_bytes: int = 4,
) -> KernelTiming:
    nelems = resolve_product(attrs["nelems"], bindings)
    reads, writes, flops = elementwise_passes(attrs, fused_region)
    return price_elementwise(nelems, reads, writes, flops, device,
                             f"elementwise:{name}", elem_bytes)


def _fused_node_cost(
    node: OpNode, bindings: DimBindings, chars: RuntimeCharacteristics,
    device: DeviceSpec,
) -> KernelTiming:
    """One launch; constituents priced with intra-fusion memory savings."""
    compute_s = 0.0
    memory_s = 0.0
    for op in node.attrs["fused_ops"]:
        op_type = OpType(op["op_type"])
        attrs = op["attrs"]
        if op_type in (OpType.SOFTMAX, OpType.LAYERNORM):
            timing = _reduction_node_cost(
                node, bindings, chars, device, op_type, op["name"], attrs
            )
        elif op_type in (OpType.ELEMENTWISE, OpType.TRANSPOSE):
            if op_type is OpType.TRANSPOSE:
                attrs = {**attrs, "reads": 1, "writes": 1,
                         "flops_per_elem": attrs.get("flops_per_elem", 0.5)}
            timing = _elementwise_node_cost(
                bindings, device, op["name"], attrs, fused_region=True,
                elem_bytes=chars.precision_bytes,
            )
        else:
            raise ValueError(
                f"fused node {node.name!r} contains unfusable op {op_type}"
            )
        compute_s += timing.compute_s
        memory_s += timing.memory_s
    return KernelTiming(
        name=f"fused:{node.name}",
        launch_s=device.launch_overhead_s,
        compute_s=compute_s,
        memory_s=memory_s,
    )


def node_cost(
    node: OpNode,
    bindings: DimBindings,
    chars: RuntimeCharacteristics,
    device: DeviceSpec,
) -> KernelTiming:
    """Price one graph node under the given runtime and request dims."""
    if node.op_type.is_gemm:
        timing = _gemm_node_cost(node, bindings, chars, device)
    elif node.op_type in (OpType.SOFTMAX, OpType.LAYERNORM):
        timing = _reduction_node_cost(
            node, bindings, chars, device, node.op_type, node.name, node.attrs
        )
    elif node.op_type is OpType.ELEMENTWISE:
        timing = _elementwise_node_cost(bindings, device, node.name, node.attrs,
                                        elem_bytes=chars.precision_bytes)
    elif node.op_type is OpType.TRANSPOSE:
        attrs = {**node.attrs, "reads": 1, "writes": 1,
                 "flops_per_elem": node.attrs.get("flops_per_elem", 0.5)}
        timing = _elementwise_node_cost(bindings, device, node.name, attrs,
                                        elem_bytes=chars.precision_bytes)
    elif node.op_type is OpType.EMBEDDING:
        attrs = {**node.attrs, "reads": 2, "writes": 1, "flops_per_elem": 2.0}
        timing = _elementwise_node_cost(bindings, device, node.name, attrs,
                                        elem_bytes=chars.precision_bytes)
    elif node.op_type is OpType.FUSED:
        timing = _fused_node_cost(node, bindings, chars, device)
    else:  # pragma: no cover - exhaustive
        raise ValueError(f"no cost model for op type {node.op_type}")
    return timing


def graph_cost(
    nodes: Iterable[OpNode],
    bindings: DimBindings,
    chars: RuntimeCharacteristics,
    device: DeviceSpec,
) -> List[KernelTiming]:
    """Price every node; callers accumulate via a :class:`~repro.gpusim.Stream`."""
    return [node_cost(node, bindings, chars, device) for node in nodes]
