"""Inference runtimes: a graph + characteristics + device = a latency model.

An :class:`InferenceRuntime` owns a model graph (fused or not, per the
runtime's characteristics), prices a request ``(batch, seq_len)`` through
the gpusim cost model, and charges memory-management overhead through its
allocator.  Numeric execution is deliberately decoupled — the models in
:mod:`repro.models` compute real outputs; runtimes compute *time* — so the
benchmark sweeps stay fast and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..gpusim import DeviceSpec, KernelTiming, Stream
from ..graph import (
    ComputationGraph,
    UsageRecordTemplates,
    fuse_graph,
    tensor_usage_records,
)
from ..memory import BaseAllocator, RequestAllocation, TensorUsageRecord
from .compiled import CompiledCostModel
from .cost import RuntimeCharacteristics, graph_cost

#: Host cost coefficients for Turbo's per-request offset planning (Alg. 1 is
#: O(n^2) in the number of usage records with a tiny constant).
PLAN_HOST_LINEAR_S = 0.5e-6
PLAN_HOST_QUADRATIC_S = 2e-9

#: Host cost of one cache-hit allocation in an eager caching allocator.
EAGER_ALLOC_HOST_S = 1e-6


@dataclass(frozen=True)
class InferenceResult:
    """Cost breakdown of one simulated inference."""

    latency_s: float
    batch: int
    seq_len: int
    padded_seq_len: int
    kernel_launches: int
    kernel_s: float
    memory_overhead_s: float
    time_by_kernel: Dict[str, float] = field(default_factory=dict)
    allocation: Optional[RequestAllocation] = None

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def memory_overhead_fraction(self) -> float:
        """Share of latency spent on memory management (paper: <6%)."""
        return self.memory_overhead_s / self.latency_s if self.latency_s else 0.0


class InferenceRuntime:
    """Latency model of one (runtime, model, device) triple.

    Parameters
    ----------
    graph:
        Fine-grained model graph (from :mod:`repro.models`); the fusion
        pass is applied here when the characteristics say so.
    chars:
        The runtime's execution characteristics.
    device:
        Simulated device.
    allocator_factory:
        Builds the runtime's intermediate-tensor allocator; ``None``
        disables memory accounting (pure kernel time).
    use_compiled:
        Price kernels through the per-graph :class:`CompiledCostModel`
        (bit-identical to the interpretive :func:`graph_cost`, but with
        attr resolution done once at compile time) and serve
        :meth:`latency` misses through a slim path that skips building
        per-kernel breakdowns.  ``False`` restores the reference paths
        (the benchmark baseline).
    memoize_records:
        Memoize ``tensor_usage_records`` per (batch, padded) shape — the
        records depend on nothing else.
    plan_cache_host_cost:
        How allocation-plan cache hits are charged on the host.
        ``"replan"`` (default) keeps the full Alg. 1 planning cost even on
        a hit, so latencies stay bit-identical to the uncached model while
        wall-clock time is saved.  ``"cached"`` models a server that keys
        plans by shape and charges a hit only ``EAGER_ALLOC_HOST_S``-class
        per-tensor bookkeeping (the §4.2 fast path).
    """

    def __init__(
        self,
        graph: ComputationGraph,
        chars: RuntimeCharacteristics,
        device: DeviceSpec,
        allocator_factory: Optional[Callable[[], BaseAllocator]] = None,
        use_compiled: bool = True,
        memoize_records: bool = True,
        plan_cache_host_cost: str = "replan",
    ) -> None:
        if plan_cache_host_cost not in ("replan", "cached"):
            raise ValueError(
                f"plan_cache_host_cost must be 'replan' or 'cached', "
                f"got {plan_cache_host_cost!r}")
        self.base_graph = graph
        self.graph = fuse_graph(graph) if chars.fuse_kernels else graph
        self.chars = chars
        self.device = device
        self.allocator = allocator_factory() if allocator_factory else None
        self.use_compiled = use_compiled
        self.memoize_records = memoize_records
        self.plan_cache_host_cost = plan_cache_host_cost
        self.preprocess_total_s = 0.0
        self._tuned_lengths: set = set()
        self._latency_cache: Dict[Tuple[int, int], float] = {}
        self._compiled: Optional[CompiledCostModel] = None
        self._record_templates: Optional[UsageRecordTemplates] = None
        self._records_cache: Dict[Tuple[int, int], List[TensorUsageRecord]] = {}
        self.records_memo_hits = 0
        self.records_memo_misses = 0

    # -- core ---------------------------------------------------------------

    def _bindings(self, batch: int, seq_len: int) -> Dict[str, int]:
        return {"batch": batch, "seq": seq_len}

    def compiled_model(self) -> CompiledCostModel:
        """The lazily built compiled pricing of this runtime's graph."""
        if self._compiled is None:
            self._compiled = CompiledCostModel(
                self.graph.nodes, self.chars, self.device
            )
        return self._compiled

    def kernel_timings(self, batch: int, seq_len: int) -> List[KernelTiming]:
        """Per-kernel cost of one inference at the *executed* (padded) length."""
        if batch <= 0 or seq_len <= 0:
            raise ValueError(f"batch and seq_len must be positive, got {batch}, {seq_len}")
        padded = self.chars.padded_length(seq_len)
        bindings = self._bindings(batch, padded)
        if self.use_compiled:
            return self.compiled_model().timings(bindings)
        return graph_cost(self.graph.nodes, bindings, self.chars, self.device)

    def _compute_records(self, batch: int, padded: int) -> List[TensorUsageRecord]:
        if not self.use_compiled:
            return tensor_usage_records(self.graph, self._bindings(batch, padded))
        if self._record_templates is None:
            self._record_templates = UsageRecordTemplates(self.graph)
        return self._record_templates.evaluate(self._bindings(batch, padded))

    def usage_records(self, batch: int, padded: int) -> List[TensorUsageRecord]:
        """Usage records at a shape; memoized (they depend on nothing else)."""
        if not self.memoize_records:
            return self._compute_records(batch, padded)
        key = (batch, padded)
        records = self._records_cache.get(key)
        if records is None:
            self.records_memo_misses += 1
            records = self._records_cache[key] = self._compute_records(
                batch, padded
            )
        else:
            self.records_memo_hits += 1
        return records

    def invalidate_caches(self) -> None:
        """Drop every shape-keyed cache (call after mutating graph/config).

        Clears the latency memo, the records memo, the compiled cost
        model, and the allocator's plan cache (when it has one).
        """
        self._latency_cache.clear()
        self._records_cache.clear()
        self._compiled = None
        self._record_templates = None
        invalidate = getattr(self.allocator, "invalidate_plan_cache", None)
        if invalidate is not None:
            invalidate()

    def host_path_stats(self) -> Dict[str, int]:
        """Deterministic counters of the host fast path (bench/metrics)."""
        stats: Dict[str, int] = {
            "latency_cache_entries": len(self._latency_cache),
            "records_memo_hits": self.records_memo_hits,
            "records_memo_misses": self.records_memo_misses,
        }
        if self._compiled is not None:
            stats["compiled_evals"] = self._compiled.evals
            stats["compiled_nodes"] = self._compiled.node_count
            stats["compiled_cells"] = self._compiled.cell_count
            stats["compiled_folded_nodes"] = self._compiled.folded_nodes
        plan_cache = getattr(self.allocator, "plan_cache", None)
        if plan_cache is not None:
            for k, v in plan_cache.stats().items():
                stats[f"plan_cache_{k}"] = v
        return stats

    def publish_host_metrics(self, registry, tracer=None,
                             now_s: float = 0.0) -> None:
        """Mirror :meth:`host_path_stats` into a
        :class:`repro.observability.MetricsRegistry` (and optionally emit
        one Chrome-trace counter sample) so ``repro trace`` shows the
        host-path savings."""
        stats = self.host_path_stats()
        for name, value in stats.items():
            if name.endswith("_entries") or name.startswith("compiled_"):
                registry.gauge(f"host_{name}").set(value, t=now_s)
            else:
                counter = registry.counter(f"host_{name}_total")
                delta = value - counter.value
                if delta > 0:
                    counter.inc(delta)
        if tracer is not None and tracer.enabled:
            tracer.counter("host_fast_path", now_s, {
                "records_memo_hits": stats["records_memo_hits"],
                "plan_cache_hits": stats.get("plan_cache_hits", 0),
                "plan_cache_misses": stats.get("plan_cache_misses", 0),
                "compiled_evals": stats.get("compiled_evals", 0),
            })

    def _memory_overhead(self, batch: int, padded: int) -> Tuple[float, Optional[RequestAllocation]]:
        if self.allocator is None:
            return 0.0, None
        records = self.usage_records(batch, padded)
        allocation = self.allocator.process_request(records)
        n = len(records)
        if allocation.plan_cache_hit and self.plan_cache_host_cost == "cached":
            # §4.2 fast path: a shape-keyed plan replay costs bookkeeping,
            # not the quadratic offset re-planning.
            host_s = EAGER_ALLOC_HOST_S * n
        elif getattr(self.allocator, "name", "") == "turbo":
            host_s = PLAN_HOST_LINEAR_S * n + PLAN_HOST_QUADRATIC_S * n * n
        else:
            host_s = EAGER_ALLOC_HOST_S * n
        return host_s + allocation.stall_s, allocation

    def infer(self, batch: int, seq_len: int) -> InferenceResult:
        """Full-cost inference of one (possibly padded) batch."""
        padded = self.chars.padded_length(seq_len)
        if not self.chars.supports_variable_length and padded not in self._tuned_lengths:
            # Fixed-length runtimes tune per new input dimension (offline).
            self._tuned_lengths.add(padded)
            self.preprocess_total_s += self.chars.preprocess_s
        stream = Stream(trace_enabled=False)
        stream.extend(self.kernel_timings(batch, seq_len))
        # Async dispatch: the host either keeps ahead of the device or is
        # the bottleneck — whichever side is slower bounds the wall clock.
        host_s = self.chars.host_dispatch_s * stream.launches
        kernel_s = max(stream.elapsed_s, host_s)
        memory_s, allocation = self._memory_overhead(batch, padded)
        return InferenceResult(
            latency_s=kernel_s + memory_s + self.chars.fixed_overhead_s,
            batch=batch,
            seq_len=seq_len,
            padded_seq_len=padded,
            kernel_launches=stream.launches,
            kernel_s=kernel_s,
            memory_overhead_s=memory_s,
            time_by_kernel=stream.time_by_kernel(),
            allocation=allocation,
        )

    def latency(self, batch: int, seq_len: int) -> float:
        """Memoized steady-state latency in seconds (used by serving).

        The first inference at a new shape pays cold allocator stalls
        (cudaMalloc cache misses); a long-running service does not, so the
        memoized value is the *second* (warm) run at that shape.
        """
        padded = self.chars.padded_length(seq_len)
        key = (batch, padded)
        cached = self._latency_cache.get(key)
        if cached is None:
            if self.use_compiled:
                cached = self._fast_latency(batch, seq_len, padded)
            else:
                if self.allocator is not None:
                    self.infer(batch, seq_len)  # warm the allocator caches
                cached = self.infer(batch, seq_len).latency_s
            self._latency_cache[key] = cached
        return cached

    def _fast_latency(self, batch: int, seq_len: int, padded: int) -> float:
        """Slim cold-plus-warm measurement for a :meth:`latency` miss.

        Performs the same state transitions as two :meth:`infer` calls —
        tuning bookkeeping once per new padded length, a cold allocator
        pass then a warm one — but prices kernels through the compiled
        model's running total instead of materializing per-kernel
        breakdowns twice.  Bit-identical to the reference path: the kernel
        sum replicates Stream accumulation order and the warm memory
        overhead is measured exactly as :meth:`infer` would.
        """
        if batch <= 0 or seq_len <= 0:
            raise ValueError(f"batch and seq_len must be positive, got {batch}, {seq_len}")
        if not self.chars.supports_variable_length and padded not in self._tuned_lengths:
            self._tuned_lengths.add(padded)
            self.preprocess_total_s += self.chars.preprocess_s
        elapsed_s, launches = self.compiled_model().total(
            self._bindings(batch, padded)
        )
        host_s = self.chars.host_dispatch_s * launches
        kernel_s = max(elapsed_s, host_s)
        if self.allocator is not None:
            self._memory_overhead(batch, padded)  # cold pass: warm allocator
        memory_s, _ = self._memory_overhead(batch, padded)
        return kernel_s + memory_s + self.chars.fixed_overhead_s

    @property
    def name(self) -> str:
        return self.chars.name

    @property
    def kernel_launch_count(self) -> int:
        """Kernel launches per inference (fusion reduces this)."""
        return len(self.graph.nodes)


class DecoderRuntime:
    """Latency model for autoregressive decoding (Fig. 10's Decoder case).

    Per-step cost grows with the number of cached target positions; total
    latency integrates the symbolic step graph over generated steps.  Steps
    are sampled every ``stride`` positions and the strided samples weighted,
    which bounds evaluation cost while tracking the (near-linear) growth.
    """

    def __init__(
        self,
        step_graph: ComputationGraph,
        chars: RuntimeCharacteristics,
        device: DeviceSpec,
        beam_size: int,
        stride: int = 8,
        step_overhead_s: float = 0.0,
        use_compiled: bool = True,
    ) -> None:
        """``step_overhead_s`` is per-step beam-search bookkeeping outside
        the graph: top-k selection, hypothesis management and KV-cache
        reordering.  A Python loop (PyTorch) pays milliseconds here; a C++
        serving loop (Turbo) pays almost nothing."""
        if beam_size <= 0:
            raise ValueError(f"beam_size must be positive, got {beam_size}")
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        if step_overhead_s < 0:
            raise ValueError(f"step_overhead_s must be >= 0, got {step_overhead_s}")
        self.step_graph = fuse_graph(step_graph) if chars.fuse_kernels else step_graph
        self.chars = chars
        self.device = device
        self.beam_size = beam_size
        self.stride = stride
        self.step_overhead_s = step_overhead_s
        self.use_compiled = use_compiled
        self._compiled: Optional[CompiledCostModel] = None
        self._step_cache: Dict[Tuple[int, int], float] = {}

    def compiled_model(self) -> CompiledCostModel:
        """The lazily built compiled pricing of the decode-step graph."""
        if self._compiled is None:
            self._compiled = CompiledCostModel(
                self.step_graph.nodes, self.chars, self.device
            )
        return self._compiled

    def step_latency(self, tgt_pos: int, src_len: int) -> float:
        """Cost of decode step attending ``tgt_pos`` cached positions."""
        if tgt_pos <= 0 or src_len <= 0:
            raise ValueError(f"tgt_pos and src_len must be positive, got {tgt_pos}, {src_len}")
        padded_src = self.chars.padded_length(src_len)
        key = (tgt_pos, padded_src)
        cached = self._step_cache.get(key)
        if cached is None:
            bindings = {"beam": self.beam_size, "tgt_pos": tgt_pos, "src_len": padded_src}
            if self.use_compiled:
                elapsed_s, launches = self.compiled_model().total(bindings)
            else:
                stream = Stream(trace_enabled=False)
                stream.extend(
                    graph_cost(self.step_graph.nodes, bindings, self.chars, self.device)
                )
                elapsed_s, launches = stream.elapsed_s, stream.launches
            # Beam search syncs on the logits every step, so the host can
            # only run ahead within one step: dispatch binds per step.
            host_s = self.chars.host_dispatch_s * launches
            cached = max(elapsed_s, host_s) + self.step_overhead_s
            self._step_cache[key] = cached
        return cached

    def decode_latency(self, src_len: int, tgt_len: int) -> float:
        """Total latency of generating ``tgt_len`` tokens."""
        if tgt_len <= 0:
            raise ValueError(f"tgt_len must be positive, got {tgt_len}")
        total = self.chars.fixed_overhead_s  # once per decode request

        step = 1
        while step <= tgt_len:
            span = min(self.stride, tgt_len - step + 1)
            total += self.step_latency(step, src_len) * span
            step += self.stride
        return total

    @property
    def name(self) -> str:
        return self.chars.name
