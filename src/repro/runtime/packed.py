"""Padding-free ("packed") batching cost model.

The production TurboTransformers line later added *smart batching*: instead
of zero-padding a batch to its longest member, the requests' token
sequences are concatenated along the sequence axis.  Token-proportional
kernels (all GEMM projections, FFNs, elementwise sweeps, LayerNorm) then
process exactly ``sum(lengths)`` tokens with no waste; only the kernels
that are *quadratic* in the sequence length (attention scores/context and
the softmax over them) must still run per request.

This module prices a packed batch from the same symbolic graph: a node is
classified per-request if the ``seq`` symbol appears more than once in its
cost attributes (quadratic), and shared otherwise (priced once at the
total token count).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..gpusim import DeviceSpec, KernelTiming, Stream
from ..graph import ComputationGraph, OpNode, fuse_graph
from .cost import RuntimeCharacteristics, node_cost

_COST_ATTR_KEYS = ("m", "n", "k", "batch", "rows", "row_len", "nelems")


def _count_symbol(value, symbol: str) -> int:
    if isinstance(value, str):
        return 1 if value == symbol else 0
    if isinstance(value, (tuple, list)):
        return sum(_count_symbol(v, symbol) for v in value)
    return 0


def seq_occurrences(node: OpNode, symbol: str = "seq") -> int:
    """Total occurrences of ``symbol`` across the node's cost attrs.

    A GEMM with ``m=seq, n=seq`` or a softmax with ``rows=(.., seq),
    row_len=seq`` counts 2 — its cost is quadratic in the sequence length.
    FUSED nodes take the max over their constituents (one quadratic
    constituent makes the whole fused kernel per-request).
    """
    if node.op_type.value == "fused":
        return max(
            (
                sum(
                    _count_symbol(op["attrs"].get(key), symbol)
                    for key in _COST_ATTR_KEYS
                )
                for op in node.attrs.get("fused_ops", [])
            ),
            default=0,
        )
    return sum(
        _count_symbol(node.attrs.get(key), symbol) for key in _COST_ATTR_KEYS
    )


def is_quadratic_in_seq(node: OpNode) -> bool:
    """True for attention-core nodes whose cost grows with seq^2."""
    return seq_occurrences(node) >= 2


class PackedRuntime:
    """Prices padding-free batches over a model graph."""

    def __init__(
        self,
        graph: ComputationGraph,
        chars: RuntimeCharacteristics,
        device: DeviceSpec,
    ) -> None:
        self.graph = fuse_graph(graph) if chars.fuse_kernels else graph
        self.chars = chars
        self.device = device
        self._shared_nodes: List[OpNode] = []
        self._quadratic_nodes: List[OpNode] = []
        for node in self.graph.nodes:
            (self._quadratic_nodes if is_quadratic_in_seq(node)
             else self._shared_nodes).append(node)
        self._cache: Dict[Tuple[int, ...], float] = {}

    @property
    def quadratic_node_count(self) -> int:
        return len(self._quadratic_nodes)

    def packed_latency(self, lengths: Sequence[int]) -> float:
        """Latency of one packed batch containing the given request lengths."""
        if not lengths:
            raise ValueError("a packed batch needs at least one request")
        if any(l <= 0 for l in lengths):
            raise ValueError(f"lengths must be positive, got {list(lengths)}")
        key = tuple(sorted(lengths))
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        stream = Stream(trace_enabled=False)
        total_tokens = sum(lengths)
        # Token-proportional kernels sweep the concatenated batch once.
        shared_bindings = {"batch": 1, "seq": total_tokens}
        for node in self._shared_nodes:
            stream.submit(node_cost(node, shared_bindings, self.chars, self.device))
        # Quadratic (attention-core) kernels run per request — but share
        # launches: the per-request work is expressed as one batched kernel
        # per node, so only the device time is summed per request.
        for node in self._quadratic_nodes:
            for i, length in enumerate(lengths):
                timing = node_cost(node, {"batch": 1, "seq": length},
                                   self.chars, self.device)
                if i > 0:  # one launch per node, per-request device time
                    timing = KernelTiming(
                        name=timing.name, launch_s=0.0,
                        compute_s=timing.compute_s, memory_s=timing.memory_s,
                    )
                stream.submit(timing)
        host_s = self.chars.host_dispatch_s * stream.launches
        latency = max(stream.elapsed_s, host_s) + self.chars.fixed_overhead_s
        self._cache[key] = latency
        return latency

    def padded_equivalent_latency(
        self, lengths: Sequence[int], cost_fn
    ) -> float:
        """The padded cost the same batch would pay (for comparisons)."""
        return cost_fn(max(lengths), len(lengths))
