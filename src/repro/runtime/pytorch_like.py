"""PyTorch-like baseline runtime.

Eager execution of the fine-grained graph: every primitive is its own
kernel (no fusion), reductions use the framework's generic shared-memory
kernels, each op pays Python dispatch (~15 µs host), and intermediates go
through the caching CUDA allocator.  Variable-length capable — this is the
strongest property PyTorch has in Table 1 — but slow.
"""

from __future__ import annotations

from typing import Optional

from ..gpusim import RTX_2060, DeviceSpec, ReductionImpl
from ..graph import ComputationGraph
from ..memory import CachingAllocator
from ..models import bert_base, build_encoder_graph
from .base import InferenceRuntime
from .cost import RuntimeCharacteristics

PYTORCH_CHARACTERISTICS = RuntimeCharacteristics(
    name="PyTorch",
    fuse_kernels=False,
    reduction_impl=ReductionImpl.PYTORCH,
    gemm_tuning=1.0,
    host_dispatch_s=15e-6,
    fixed_overhead_s=1.2e-3,
    supports_variable_length=True,
    preprocess_s=0.0,
    usage="easy",
)


def pytorch_runtime(
    graph: Optional[ComputationGraph] = None,
    device: DeviceSpec = RTX_2060,
) -> InferenceRuntime:
    return InferenceRuntime(
        graph=graph if graph is not None else build_encoder_graph(bert_base()),
        chars=PYTORCH_CHARACTERISTICS,
        device=device,
        allocator_factory=CachingAllocator,
    )
