"""Chunked prefill: split one prompt pass into token-bounded chunks.

A prefill pass over a ``P``-token prompt is a single GPU occupancy of
``prefill_latency(batch, P)`` seconds — at high arrival rates it is the
dominant head-of-line blocker, stalling every decoding request for the
full pass.  :class:`PrefillChunker` splits the pass into chunks of at
most ``chunk_tokens`` prompt positions so the serving loop can interleave
decode steps between chunks (on a second simulated stream).

Chunk boundaries are **pure bookkeeping**: the KV written is identical,
so generated tokens stay byte-identical to the unchunked path.  Only the
*timing* model changes, and even that conserves cost: chunk ``i``
covering positions ``[s, e)`` is priced as the *incremental* cost

    ``prefill_latency(batch, e) - prefill_latency(batch, s)``

(the first chunk pays ``prefill_latency(batch, e)`` outright, including
the runtime's fixed launch overhead).  The per-chunk costs telescope, so
the sum over a pass equals the unchunked ``prefill_latency(batch, P)``
up to float association — attention-over-prefix cost growth is captured
naturally because later chunks attend over everything already cached.
An optional ``per_chunk_overhead_s`` charges the extra kernel-launch
cost of every chunk after the first (chunking is then strictly slower
serially — the win has to come from overlap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class PrefillChunk:
    """One chunk of a prefill pass: prompt positions ``[start, end)``."""

    index: int
    start: int
    tokens: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"chunk index must be >= 0, got {self.index}")
        if self.start < 0:
            raise ValueError(f"chunk start must be >= 0, got {self.start}")
        if self.tokens <= 0:
            raise ValueError(
                f"chunk must cover at least one token, got {self.tokens}"
            )

    @property
    def end(self) -> int:
        return self.start + self.tokens


@dataclass(frozen=True)
class PrefillChunker:
    """Split prompts into chunks of at most ``chunk_tokens`` positions."""

    chunk_tokens: int
    per_chunk_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.chunk_tokens <= 0:
            raise ValueError(
                f"chunk_tokens must be positive, got {self.chunk_tokens}"
            )
        if self.per_chunk_overhead_s < 0.0:
            raise ValueError(
                f"per_chunk_overhead_s must be >= 0, "
                f"got {self.per_chunk_overhead_s}"
            )

    def chunks(self, prompt_len: int, start: int = 0) -> List[PrefillChunk]:
        """Chunks tiling ``[start, prompt_len)`` in order (last may be short).

        A nonzero ``start`` is the prefix-cache case: positions before it
        are already resident in the KV arena, so the pass covers only the
        uncached suffix (attending over the cached prefix — the pricing
        below accounts for that naturally).
        """
        if prompt_len <= 0:
            raise ValueError(f"prompt_len must be positive, got {prompt_len}")
        if not 0 <= start < prompt_len:
            raise ValueError(
                f"start must be in [0, prompt_len), got {start} of {prompt_len}"
            )
        out: List[PrefillChunk] = []
        while start < prompt_len:
            tokens = min(self.chunk_tokens, prompt_len - start)
            out.append(PrefillChunk(index=len(out), start=start, tokens=tokens))
            start += tokens
        return out

    def chunk_latency(self, runtime, batch: int, chunk: PrefillChunk,
                      pass_start: int = 0) -> float:
        """Incremental cost of one chunk at the given batch width.

        ``pass_start`` marks where this pass's *first* chunk begins: that
        chunk pays the full ``prefill_latency(batch, end)`` (launch
        overhead included) minus the cached prefix's cost, and later
        chunks pay the telescoping difference plus the per-chunk launch
        overhead.
        """
        cost = runtime.prefill_latency(batch, chunk.end)
        if chunk.start > 0:
            # Marginal cost over the already-computed (or cached) prefix.
            # The runtime's fixed overhead cancels in the difference;
            # clamp defensively so a non-monotone cost model can never
            # produce negative time.
            cost = max(0.0, cost - runtime.prefill_latency(batch, chunk.start))
        if chunk.start > pass_start:
            cost += self.per_chunk_overhead_s
        return cost

    def pass_latencies(self, runtime, batch: int,
                       prompt_len: int, start: int = 0) -> List[float]:
        """Per-chunk latencies for one pass; sums (telescopes) to the
        unchunked ``prefill_latency(batch, prompt_len)`` when
        ``per_chunk_overhead_s`` is zero and ``start`` is zero."""
        return [self.chunk_latency(runtime, batch, c, pass_start=start)
                for c in self.chunks(prompt_len, start=start)]
