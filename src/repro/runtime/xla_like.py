"""TensorFlow-XLA-like baseline.

Whole-graph compilation fuses elementwise chains well, but the generated
reduction code is generic, generated GEMM schedules are slightly below
hand-tuned cuBLAS, and — decisive for serving — every new input shape
triggers a recompile, so the runtime is fixed-length only (Table 1).
"""

from __future__ import annotations

from typing import Optional

from ..gpusim import RTX_2060, DeviceSpec, ReductionImpl
from ..graph import ComputationGraph
from ..memory import CachingAllocator
from ..models import bert_base, build_encoder_graph
from .base import InferenceRuntime
from .cost import RuntimeCharacteristics

XLA_CHARACTERISTICS = RuntimeCharacteristics(
    name="TensorFlow-XLA",
    fuse_kernels=True,
    reduction_impl=ReductionImpl.CUDNN,
    gemm_tuning=0.92,
    host_dispatch_s=5e-6,
    fixed_overhead_s=1.0e-3,
    supports_variable_length=False,
    preprocess_s=30.0,  # per-shape JIT compile
    usage="easy",
)


def xla_runtime(
    graph: Optional[ComputationGraph] = None,
    device: DeviceSpec = RTX_2060,
    pad_to_multiple: int = 1,
) -> InferenceRuntime:
    chars = XLA_CHARACTERISTICS
    if pad_to_multiple != 1:
        from dataclasses import replace

        chars = replace(chars, pad_to_multiple=pad_to_multiple)
    return InferenceRuntime(
        graph=graph if graph is not None else build_encoder_graph(bert_base()),
        chars=chars,
        device=device,
        allocator_factory=CachingAllocator,
    )
