"""Inference runtimes: Turbo plus the five baselines of Table 1."""

from .base import DecoderRuntime, InferenceResult, InferenceRuntime
from .capacity import max_feasible_batch, safe_max_batch, serving_batch_limits
from .compiled import (
    CompiledCostModel,
    compile_graph,
    lower_product,
    verify_equivalence,
)
from .chunked import PrefillChunk, PrefillChunker
from .cost import RuntimeCharacteristics, graph_cost, node_cost, resolve_product
from .fastertransformer_like import (
    FASTER_TRANSFORMER_CHARACTERISTICS,
    fastertransformer_runtime,
)
from .onnxruntime_like import ONNXRUNTIME_CHARACTERISTICS, onnxruntime_runtime
from .executor import ExecutionError, PlannedGraphExecutor
from .generation import GenerationRuntime, GenerationTimeline
from .packed import PackedRuntime, is_quadratic_in_seq, seq_occurrences
from .profiler import CostTable, warmup_profile
from .pytorch_like import PYTORCH_CHARACTERISTICS, pytorch_runtime
from .tensorrt_like import TENSORRT_CHARACTERISTICS, tensorrt_runtime
from .turbo import TURBO_CHARACTERISTICS, turbo_fp16_runtime, turbo_runtime
from .xla_like import XLA_CHARACTERISTICS, xla_runtime

#: All runtime factories keyed by short name (used by experiment sweeps).
RUNTIME_FACTORIES = {
    "turbo": turbo_runtime,
    "pytorch": pytorch_runtime,
    "onnxruntime": onnxruntime_runtime,
    "xla": xla_runtime,
    "fastertransformer": fastertransformer_runtime,
    "tensorrt": tensorrt_runtime,
}

__all__ = [
    "InferenceRuntime",
    "InferenceResult",
    "DecoderRuntime",
    "RuntimeCharacteristics",
    "node_cost",
    "graph_cost",
    "resolve_product",
    "CompiledCostModel",
    "compile_graph",
    "lower_product",
    "verify_equivalence",
    "max_feasible_batch",
    "serving_batch_limits",
    "safe_max_batch",
    "CostTable",
    "GenerationRuntime",
    "GenerationTimeline",
    "PrefillChunk",
    "PrefillChunker",
    "PlannedGraphExecutor",
    "ExecutionError",
    "PackedRuntime",
    "is_quadratic_in_seq",
    "seq_occurrences",
    "warmup_profile",
    "turbo_runtime",
    "turbo_fp16_runtime",
    "pytorch_runtime",
    "onnxruntime_runtime",
    "xla_runtime",
    "fastertransformer_runtime",
    "tensorrt_runtime",
    "TURBO_CHARACTERISTICS",
    "PYTORCH_CHARACTERISTICS",
    "ONNXRUNTIME_CHARACTERISTICS",
    "XLA_CHARACTERISTICS",
    "FASTER_TRANSFORMER_CHARACTERISTICS",
    "TENSORRT_CHARACTERISTICS",
    "RUNTIME_FACTORIES",
]
