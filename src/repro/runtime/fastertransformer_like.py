"""NVIDIA FasterTransformer-like baseline.

Hand-fused CUDA kernels like Turbo's, but with the *classical* shuffle
batch-reduction (the "before" algorithm of Fig. 4), no memory manager of
its own (it rides TensorFlow's caching allocator), and a per-dimension
profile step that makes it fixed-length only (Table 1).
"""

from __future__ import annotations

from typing import Optional

from ..gpusim import RTX_2060, DeviceSpec, ReductionImpl
from ..graph import ComputationGraph
from ..memory import CachingAllocator
from ..models import bert_base, build_encoder_graph
from .base import InferenceRuntime
from .cost import RuntimeCharacteristics

FASTER_TRANSFORMER_CHARACTERISTICS = RuntimeCharacteristics(
    name="FasterTransformers",
    fuse_kernels=True,
    reduction_impl=ReductionImpl.FASTER_TRANSFORMER,
    gemm_tuning=1.0,
    host_dispatch_s=6e-6,  # dispatched as a TensorFlow custom op
    fixed_overhead_s=1.0e-3,
    supports_variable_length=False,
    preprocess_s=5.0,
    usage="hard",
)


def fastertransformer_runtime(
    graph: Optional[ComputationGraph] = None,
    device: DeviceSpec = RTX_2060,
) -> InferenceRuntime:
    return InferenceRuntime(
        graph=graph if graph is not None else build_encoder_graph(bert_base()),
        chars=FASTER_TRANSFORMER_CHARACTERISTICS,
        device=device,
        allocator_factory=CachingAllocator,
    )
