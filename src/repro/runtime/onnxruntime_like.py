"""ONNX-Runtime-like baseline.

The only existing runtime the paper credits with variable-length support
(dynamic axes, >= 1.3).  Graph-level fusion comparable to Turbo's, but its
reduction kernels are generic (cuDNN-grade) and session setup performs a
one-time graph optimization.  Host dispatch is a thin C++ layer.
"""

from __future__ import annotations

from typing import Optional

from ..gpusim import RTX_2060, DeviceSpec, ReductionImpl
from ..graph import ComputationGraph
from ..memory import CachingAllocator
from ..models import bert_base, build_encoder_graph
from .base import InferenceRuntime
from .cost import RuntimeCharacteristics

ONNXRUNTIME_CHARACTERISTICS = RuntimeCharacteristics(
    name="onnxruntime",
    fuse_kernels=True,
    reduction_impl=ReductionImpl.CUDNN,
    gemm_tuning=0.97,
    host_dispatch_s=6e-6,
    fixed_overhead_s=1.0e-3,
    supports_variable_length=True,
    preprocess_s=10.0,  # offline session optimization, not per-request
    usage="medium",
)


def onnxruntime_runtime(
    graph: Optional[ComputationGraph] = None,
    device: DeviceSpec = RTX_2060,
) -> InferenceRuntime:
    return InferenceRuntime(
        graph=graph if graph is not None else build_encoder_graph(bert_base()),
        chars=ONNXRUNTIME_CHARACTERISTICS,
        device=device,
        allocator_factory=CachingAllocator,
    )
