"""Device-memory capacity planning for serving.

The paper notes the memory footprint "affects the possible size of the
model as well as the maximum batch size of requests" (§4.2).  This module
closes that loop: given a device memory budget, compute the largest batch
the allocator can actually plan at each sequence length, and derive the
serving-safe ``max_batch`` for the scheduler.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..gpusim.memory import DeviceMemory, OutOfDeviceMemoryError
from ..graph import ComputationGraph, fuse_graph, tensor_usage_records
from ..memory import TurboAllocator


def max_feasible_batch(
    graph: ComputationGraph,
    seq_len: int,
    activation_budget_bytes: int,
    max_batch: int = 64,
    fused: bool = True,
) -> int:
    """Largest batch whose intermediate-tensor plan fits the budget.

    Returns 0 if even batch 1 does not fit.  Each candidate batch is
    planned with a fresh allocator against a capacity-limited device, so
    chunk quantization and packing fragmentation are fully accounted.
    """
    if seq_len <= 0:
        raise ValueError(f"seq_len must be positive, got {seq_len}")
    if activation_budget_bytes <= 0:
        raise ValueError(
            f"activation_budget_bytes must be positive, got {activation_budget_bytes}"
        )
    if max_batch <= 0:
        raise ValueError(f"max_batch must be positive, got {max_batch}")
    planned = fuse_graph(graph) if fused else graph
    feasible = 0
    for batch in range(1, max_batch + 1):
        records = tensor_usage_records(planned, {"batch": batch, "seq": seq_len})
        allocator = TurboAllocator(
            device_memory=DeviceMemory(capacity_bytes=activation_budget_bytes)
        )
        try:
            allocator.plan(records)
        except OutOfDeviceMemoryError:
            break
        feasible = batch
    return feasible


def serving_batch_limits(
    graph: ComputationGraph,
    activation_budget_bytes: int,
    lengths: Iterable[int],
    max_batch: int = 64,
) -> Dict[int, int]:
    """Per-length feasible batch caps (monotone non-increasing in length)."""
    return {
        int(length): max_feasible_batch(
            graph, int(length), activation_budget_bytes, max_batch
        )
        for length in lengths
    }


def safe_max_batch(
    graph: ComputationGraph,
    activation_budget_bytes: int,
    max_seq_len: int = 512,
    max_batch: int = 64,
) -> int:
    """A single scheduler-wide ``max_batch`` that is safe at every length
    up to ``max_seq_len`` (the worst case is the longest padded batch)."""
    return max_feasible_batch(graph, max_seq_len, activation_budget_bytes, max_batch)
