"""Compiled cost models: one-time lowering of graph pricing (host fast path).

The interpretive path (:func:`repro.runtime.cost.graph_cost`) re-resolves
every node's symbolic attrs — dict lookups, ``resolve_product`` loops, attr
overlay copies — on *every* call, even though for a given graph the set of
free dimensions is fixed.  :class:`CompiledCostModel` performs that
resolution once per graph:

* each node's dims are lowered to ``(const, free_names)`` coefficient
  records (integer products are exact, so folding the constant part early
  changes nothing) and kernel names are precomputed;
* nodes that price identically up to their name — e.g. the per-layer
  copies of the same GEMM in a 12-layer encoder — are deduplicated into
  shared *cells*, so one evaluation prices all twelve;
* nodes whose dims have no free symbols are constant-folded at compile
  time.

Evaluation is then a tight O(nodes) loop over cell results, feeding the
resolved ints to the *same* pricing functions
(:func:`~repro.runtime.cost.price_gemm` /
:func:`~repro.runtime.cost.price_reduction` /
:func:`~repro.runtime.cost.price_elementwise`) the interpretive path uses.
Both paths therefore execute identical floating-point operations on
identical inputs in identical order — bit-identical timings by
construction, asserted by :func:`verify_equivalence` and the test suite.
(Sharing a cell across same-shaped nodes is exact, not approximate: the
node name is display metadata that never enters the arithmetic.)

The compiled path assumes positive integer bindings (the runtime validates
request shapes before it gets here); unbound symbols raise ``KeyError``
exactly like the interpretive path.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..gpusim import DeviceSpec, KernelTiming
from ..graph import ComputationGraph, DimBindings, OpNode, OpType
from .cost import (
    DimProduct,
    RuntimeCharacteristics,
    graph_cost,
    price_elementwise,
    price_gemm,
    price_reduction,
)

#: A lowered dim product: concrete factor plus the free symbol names whose
#: bound values multiply it at evaluation time.
LoweredDim = Tuple[int, Tuple[str, ...]]

#: A compiled pricing cell: bindings -> canonical timing (no node name).
CellEval = Callable[[DimBindings], KernelTiming]


def lower_product(value: DimProduct) -> LoweredDim:
    """Lower a dim attr (int | symbol | product sequence) to coefficients.

    ``("batch", 12, "seq")`` -> ``(12, ("batch", "seq"))``.  Integer
    multiplication is exact, so evaluating ``const * prod(bindings[n])``
    equals :func:`~repro.runtime.cost.resolve_product` for every binding.
    """
    if isinstance(value, bool):
        raise TypeError("dimension cannot be a bool")
    if isinstance(value, int):
        if value <= 0:
            raise ValueError(f"concrete dims must be positive, got {value}")
        return value, ()
    if isinstance(value, str):
        return 1, (value,)
    const = 1
    names: List[str] = []
    for part in value:
        if isinstance(part, bool):
            raise TypeError("dimension cannot be a bool")
        if isinstance(part, int):
            if part <= 0:
                raise ValueError(f"concrete dims must be positive, got {part}")
            const *= part
        else:
            names.append(part)
    return const, tuple(names)


def _dim_eval(lowered: LoweredDim) -> Callable[[DimBindings], int]:
    """Fast evaluator for one lowered dim product."""
    const, names = lowered
    if not names:
        return lambda b, c=const: c
    if len(names) == 1:
        return lambda b, c=const, n=names[0]: c * b[n]
    if len(names) == 2:
        return lambda b, c=const, n0=names[0], n1=names[1]: c * b[n0] * b[n1]

    def many(b: DimBindings, c: int = const, ns: Tuple[str, ...] = names) -> int:
        for n in ns:
            c *= b[n]
        return c

    return many


class CompiledCostModel:
    """Per-graph compiled pricing: ``timings(bindings)`` with no re-resolution.

    Parameters
    ----------
    nodes:
        Graph nodes in execution order (already fused if the runtime fuses).
    chars, device:
        Same meaning as for :func:`~repro.runtime.cost.graph_cost`.

    Attributes
    ----------
    node_count / cell_count:
        Graph nodes vs distinct pricing cells after deduplication.
    folded_nodes:
        Nodes whose timing was computed once at compile time (no free dims).
    evals:
        Number of :meth:`timings`/:meth:`total` calls served so far.
    """

    def __init__(
        self,
        nodes: Sequence[OpNode],
        chars: RuntimeCharacteristics,
        device: DeviceSpec,
    ) -> None:
        self.chars = chars
        self.device = device
        self.node_count = len(nodes)
        self.evals = 0
        self._cells: List[CellEval] = []
        self._cell_const: List[bool] = []
        self._cell_index: Dict[Hashable, int] = {}
        #: Per node: index into ``_cells`` and the display name the
        #: interpretive path would stamp on this node's timing.
        self._node_cells: List[int] = []
        self._node_names: List[str] = []
        for node in nodes:
            key, name, build = self._lower_node(node)
            index = self._cell_index.get(key)
            if index is None:
                index = len(self._cells)
                fn, const = build()
                if const:
                    timing = fn({})  # constant-fold once at compile time
                    fn = lambda b, t=timing: t  # noqa: E731 - tiny thunk
                self._cells.append(fn)
                self._cell_const.append(const)
                self._cell_index[key] = index
            self._node_cells.append(index)
            self._node_names.append(name)
        self.cell_count = len(self._cells)
        self.folded_nodes = sum(
            1 for ci in self._node_cells if self._cell_const[ci]
        )

    # -- compilation -------------------------------------------------------

    def _lower_node(
        self, node: OpNode
    ) -> Tuple[Hashable, str, Callable[[], Tuple[CellEval, bool]]]:
        """(dedup key, per-node display name, cell builder) for one node."""
        chars, device = self.chars, self.device
        if node.op_type.is_gemm:
            dims = tuple(lower_product(node.attrs[a]) for a in ("m", "n", "k"))
            batch = lower_product(node.attrs.get("batch", 1))
            name = f"gemm:{node.name}"

            def build() -> Tuple[CellEval, bool]:
                m, n, k = (_dim_eval(d) for d in dims)
                bt = _dim_eval(batch)
                const = all(not d[1] for d in dims) and not batch[1]
                return (lambda b: price_gemm(m(b), n(b), k(b), bt(b), chars,
                                             device, name), const)

            return ("g", dims, batch), name, build
        if node.op_type in (OpType.SOFTMAX, OpType.LAYERNORM):
            key, name, build = self._lower_reduction(
                node.op_type, node.name, node.attrs)
            return key, name, build
        if node.op_type in (OpType.ELEMENTWISE, OpType.TRANSPOSE,
                            OpType.EMBEDDING):
            return self._lower_elementwise(node.op_type, node.name, node.attrs)
        if node.op_type is OpType.FUSED:
            return self._lower_fused(node)
        raise ValueError(f"no cost model for op type {node.op_type}")

    def _lower_reduction(
        self, op_type: OpType, name: str, attrs: Dict[str, Any]
    ) -> Tuple[Hashable, str, Callable[[], Tuple[CellEval, bool]]]:
        chars, device = self.chars, self.device
        rows = lower_product(attrs["rows"])
        row_len = lower_product(attrs["row_len"])

        # price_reduction stamps f"{impl name}:{node name}" — the node name
        # is display-only, so cells may still be shared across nodes; the
        # cell carries the first sharer's name and timings() re-stamps.
        def build() -> Tuple[CellEval, bool]:
            r, l = _dim_eval(rows), _dim_eval(row_len)
            const = not rows[1] and not row_len[1]
            return (lambda b: price_reduction(r(b), l(b), op_type, name,
                                              chars, device), const)

        impl = chars.reduction_impl.value
        prefix = ("softmax" if op_type is OpType.SOFTMAX else "layernorm")
        return (("r", op_type, rows, row_len),
                f"{prefix}[{impl}]:{name}", build)

    def _lower_elementwise(
        self, op_type: OpType, name: str, attrs: Dict[str, Any],
        fused_region: bool = False,
    ) -> Tuple[Hashable, str, Callable[[], Tuple[CellEval, bool]]]:
        # Mirrors node_cost's per-type pass overlays, resolved at compile
        # time (see cost.elementwise_passes and the TRANSPOSE/EMBEDDING
        # branches of node_cost).
        chars, device = self.chars, self.device
        if op_type is OpType.EMBEDDING:
            reads, writes, flops = 2, 1, 2.0
        elif op_type is OpType.TRANSPOSE:
            reads, writes = 1, 1
            flops = float(attrs.get("flops_per_elem", 0.5))
        else:
            reads = int(attrs.get("reads", 1))
            writes = int(attrs.get("writes", 1))
            flops = float(attrs.get("flops_per_elem", 1.0))
        if fused_region:
            reads, writes = 1, 0
        nelems = lower_product(attrs["nelems"])
        kname = f"elementwise:{name}"
        elem_bytes = chars.precision_bytes

        def build() -> Tuple[CellEval, bool]:
            ne = _dim_eval(nelems)
            return (lambda b: price_elementwise(ne(b), reads, writes, flops,
                                                device, kname, elem_bytes),
                    not nelems[1])

        return ("e", nelems, reads, writes, flops), kname, build

    def _lower_fused(
        self, node: OpNode
    ) -> Tuple[Hashable, str, Callable[[], Tuple[CellEval, bool]]]:
        lowered = []
        for op in node.attrs["fused_ops"]:
            op_type = OpType(op["op_type"])
            if op_type in (OpType.SOFTMAX, OpType.LAYERNORM):
                lowered.append(self._lower_reduction(op_type, op["name"],
                                                     op["attrs"]))
            elif op_type in (OpType.ELEMENTWISE, OpType.TRANSPOSE):
                lowered.append(self._lower_elementwise(
                    op_type, op["name"], op["attrs"], fused_region=True))
            else:
                raise ValueError(
                    f"fused node {node.name!r} contains unfusable op {op_type}"
                )
        name = f"fused:{node.name}"
        launch_s = self.device.launch_overhead_s

        def build() -> Tuple[CellEval, bool]:
            built = [b() for _, _, b in lowered]
            parts = [fn for fn, _ in built]
            const = all(c for _, c in built)

            def fn(b: DimBindings) -> KernelTiming:
                compute_s = 0.0
                memory_s = 0.0
                for part in parts:
                    timing = part(b)
                    compute_s += timing.compute_s
                    memory_s += timing.memory_s
                return KernelTiming(name=name, launch_s=launch_s,
                                    compute_s=compute_s, memory_s=memory_s)

            return fn, const

        key = ("f", tuple(k for k, _, _ in lowered))
        return key, name, build

    # -- evaluation --------------------------------------------------------

    def timings(self, bindings: DimBindings) -> List[KernelTiming]:
        """Per-node timings — elementwise identical to ``graph_cost``.

        Shared cells are priced once and re-stamped with each node's own
        kernel name (equal floats in, equal floats out).
        """
        self.evals += 1
        cache: List[Optional[KernelTiming]] = [None] * len(self._cells)
        out: List[KernelTiming] = []
        cells = self._cells
        for ci, name in zip(self._node_cells, self._node_names):
            timing = cache[ci]
            if timing is None:
                timing = cache[ci] = cells[ci](bindings)
            if timing.name != name:
                timing = KernelTiming(name=name, launch_s=timing.launch_s,
                                      compute_s=timing.compute_s,
                                      memory_s=timing.memory_s)
            out.append(timing)
        return out

    def total(self, bindings: DimBindings) -> Tuple[float, int]:
        """(elapsed_s, launches) accumulated exactly like a Stream.

        Sums ``timing.total_s`` node by node in execution order — the same
        float additions :meth:`repro.gpusim.Stream.submit` performs — so the
        result is bit-identical to draining :meth:`timings` through a
        Stream, without building the timing list or per-kernel breakdowns.
        """
        self.evals += 1
        totals: List[Optional[float]] = [None] * len(self._cells)
        cells = self._cells
        elapsed = 0.0
        for ci in self._node_cells:
            v = totals[ci]
            if v is None:
                v = totals[ci] = cells[ci](bindings).total_s
            elapsed += v
        return elapsed, self.node_count

    def __len__(self) -> int:
        return self.node_count


def compile_graph(
    graph: ComputationGraph,
    chars: RuntimeCharacteristics,
    device: DeviceSpec,
) -> CompiledCostModel:
    """Compile an (already fused, if applicable) graph's pricing."""
    return CompiledCostModel(graph.nodes, chars, device)


def verify_equivalence(
    nodes: Iterable[OpNode],
    bindings_list: Sequence[DimBindings],
    chars: RuntimeCharacteristics,
    device: DeviceSpec,
    compiled: Optional[CompiledCostModel] = None,
) -> List[str]:
    """Cross-check compiled vs interpretive pricing; return mismatch strings.

    Bit-exact comparison (``==`` on every KernelTiming field, no tolerance):
    an empty list means the two paths are indistinguishable on these shapes.
    """
    nodes = list(nodes)
    model = compiled or CompiledCostModel(nodes, chars, device)
    problems: List[str] = []
    for bindings in bindings_list:
        reference = graph_cost(nodes, bindings, chars, device)
        fast = model.timings(bindings)
        if len(reference) != len(fast):
            problems.append(
                f"{bindings}: node count {len(fast)} != {len(reference)}")
            continue
        for node, ref, got in zip(nodes, reference, fast):
            if (ref.name != got.name or ref.launch_s != got.launch_s
                    or ref.compute_s != got.compute_s
                    or ref.memory_s != got.memory_s):
                problems.append(
                    f"{bindings}: node {node.name!r}: compiled {got} "
                    f"!= interpretive {ref}")
    return problems
