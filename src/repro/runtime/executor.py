"""Numeric graph executor over allocator-planned memory.

This is the end-to-end proof that the sequence-length-aware allocator is
*safe*: the fine-grained encoder graph is executed numerically with every
intermediate tensor living at its planned ``(chunk, offset)`` — tensors
with disjoint lifetimes genuinely share bytes — and the output must match
the straight-line NumPy forward bit-for-bit in spirit (FP rounding).

If the plan ever aliased two live tensors, execution through the arena
would corrupt activations and the comparison tests would fail loudly.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from ..graph import ComputationGraph, OpNode, OpType, TensorKind, tensor_usage_records
from ..kernels import (
    add_bias_gelu,
    bert_embeddings,
    layernorm_one_pass,
    merge_heads,
    softmax_fused,
    split_heads,
)
from ..memory import AllocationPlan, TurboAllocator, validate_plan
from ..models.config import TransformerConfig
from ..models.weights import ModelWeights
from ..observability import NULL_TRACER


class ExecutionError(RuntimeError):
    """The executor met a node it cannot interpret."""


class PlannedGraphExecutor:
    """Interpret a fine-grained encoder graph with planned buffers.

    Parameters come from ``weights`` (graph nodes carry structure and cost
    attrs; parameter *values* live in the checkpoint, as in any runtime).
    """

    def __init__(
        self,
        graph: ComputationGraph,
        config: TransformerConfig,
        weights: ModelWeights,
        allocator: Optional[TurboAllocator] = None,
        tracer=None,
    ) -> None:
        """``tracer`` (a :class:`repro.observability.Tracer`) emits one
        host-wall-clock span per executed node on the ``executor`` track,
        plus an arena-bytes counter per run; defaults to disabled."""
        graph.validate()
        self.graph = graph
        self.config = config
        self.weights = weights
        self.allocator = allocator if allocator is not None else TurboAllocator()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.last_plan: Optional[AllocationPlan] = None

    # -- buffer management ---------------------------------------------------

    def _arena_views(self, bindings: Dict[str, int]):
        """Plan this request and build numpy views into the chunk arenas."""
        records = tensor_usage_records(self.graph, bindings)
        plan = self.allocator.plan(records)
        validate_plan(plan, records)
        self.last_plan = plan
        arenas = {
            chunk_id: np.zeros(size, dtype=np.uint8)
            for chunk_id, size in plan.chunk_sizes.items()
        }
        views: Dict[str, np.ndarray] = {}
        for record in records:
            placement = plan.placements[record.name]
            spec = self.graph.tensors[record.name]
            shape = spec.shape(bindings)
            count = math.prod(shape)
            view = np.frombuffer(
                arenas[placement.chunk_id], dtype=np.float32,
                count=count, offset=placement.offset,
            ).reshape(shape)
            views[record.name] = view
        return views

    # -- node semantics --------------------------------------------------------

    def run(self, token_ids: np.ndarray) -> np.ndarray:
        """Execute the graph for ``token_ids`` ([batch, seq]); returns the
        final hidden states."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError(f"token_ids must be [batch, seq], got {token_ids.shape}")
        batch, seq = token_ids.shape
        bindings = {"batch": int(batch), "seq": int(seq)}
        views = self._arena_views(bindings)
        # Tensors outside the plan (graph OUTPUTs) live on the side.
        side: Dict[str, np.ndarray] = {}

        def read(name: str) -> np.ndarray:
            if name in views:
                return views[name]
            return side[name]

        def write(name: str, value: np.ndarray) -> None:
            spec = self.graph.tensors[name]
            if spec.kind is TensorKind.INTERMEDIATE:
                np.copyto(views[name], value.astype(np.float32, copy=False))
            else:
                side[name] = value.astype(np.float32, copy=False)

        order = self.graph.topo_sort()
        final_name = None
        trace_on = self.tracer.enabled
        if trace_on and self.last_plan is not None:
            self.tracer.thread_name("executor", "numeric executor")
            self.tracer.counter(
                "arena_bytes", self.tracer.wall_now(),
                {"planned": self.last_plan.footprint_bytes},
            )
        for idx in order:
            node = self.graph.nodes[idx]
            if trace_on:
                t0 = self.tracer.wall_now()
                final_name = self._execute_node(node, token_ids, read, write)
                self.tracer.complete(
                    node.name, t0, self.tracer.wall_now() - t0,
                    tid="executor", cat="node", op=node.op_type.name,
                )
            else:
                final_name = self._execute_node(node, token_ids, read, write)
        assert final_name is not None
        return read(final_name).copy()

    def _layer_weights(self, name: str):
        """Resolve 'l{i}.' prefixes to the layer's weight struct."""
        layer = int(name.split(".", 1)[0][1:])
        return self.weights.layers[layer]

    def _execute_node(self, node, token_ids, read, write) -> str:
        name = node.name
        out = node.outputs[0]
        scale = 1.0 / math.sqrt(self.config.head_size)

        if node.op_type is OpType.FUSED:
            # Execute constituents in order; tensors fusion eliminated never
            # reached the plan, so they live in a transient overlay exactly
            # as a fused CUDA kernel keeps them in registers/shared memory.
            overlay: Dict[str, np.ndarray] = {}

            def overlay_read(tensor: str) -> np.ndarray:
                if tensor in overlay:
                    return overlay[tensor]
                return read(tensor)

            def overlay_write(tensor: str, value: np.ndarray) -> None:
                if tensor in self.graph.tensors:
                    write(tensor, value)
                else:
                    overlay[tensor] = value.astype(np.float32, copy=False)

            last = out
            for op in node.attrs["fused_ops"]:
                constituent = OpNode(
                    name=op["name"],
                    op_type=OpType(op["op_type"]),
                    inputs=tuple(op["inputs"]),
                    outputs=tuple(op["outputs"]),
                    attrs=op["attrs"],
                )
                last = self._execute_node(
                    constituent, token_ids, overlay_read, overlay_write
                )
            return node.outputs[-1] if node.outputs else last

        if name == "embedding":
            write(out, bert_embeddings(
                self.weights.token_embedding,
                self.weights.position_embedding,
                self.weights.segment_embedding,
                token_ids,
            ))
        elif name == "embedding_ln":
            write(out, layernorm_one_pass(
                read(node.inputs[0]),
                self.weights.embedding_ln_gamma, self.weights.embedding_ln_beta,
                eps=self.config.layer_norm_eps,
            ))
        elif name == "embedding_projection":
            if self.weights.embedding_projection is None:
                raise ExecutionError("graph has a projection but weights do not")
            write(out, read(node.inputs[0]) @ self.weights.embedding_projection)
        elif name.endswith(("q_gemm", "k_gemm", "v_gemm")):
            lw = self._layer_weights(name).attention
            w = {"q": lw.wq, "k": lw.wk, "v": lw.wv}[name[-6]]
            write(out, read(node.inputs[0]) @ w)
        elif name.endswith(("q_bias", "k_bias", "v_bias")):
            lw = self._layer_weights(name).attention
            b = {"q": lw.bq, "k": lw.bk, "v": lw.bv}[name[-6]]
            write(out, read(node.inputs[0]) + b)
        elif name.endswith("_transpose"):
            write(out, split_heads(read(node.inputs[0]), self.config.num_heads))
        elif name.endswith("scores_gemm"):
            q, k = read(node.inputs[0]), read(node.inputs[1])
            write(out, q @ np.swapaxes(k, -1, -2))
        elif name.endswith(".scale"):
            write(out, read(node.inputs[0]) * scale)
        elif name.endswith(".softmax"):
            write(out, softmax_fused(read(node.inputs[0])))
        elif name.endswith("context_gemm"):
            write(out, read(node.inputs[0]) @ read(node.inputs[1]))
        elif name.endswith("merge_heads"):
            write(out, merge_heads(read(node.inputs[0])))
        elif name.endswith("out_gemm"):
            write(out, read(node.inputs[0]) @ self._layer_weights(name).attention.wo)
        elif name.endswith("attn_add"):
            lw = self._layer_weights(name)
            write(out, read(node.inputs[0]) + lw.attention.bo + read(node.inputs[1]))
        elif name.endswith("attn_ln"):
            lw = self._layer_weights(name)
            write(out, layernorm_one_pass(
                read(node.inputs[0]), lw.attn_ln_gamma, lw.attn_ln_beta,
                eps=self.config.layer_norm_eps,
            ))
        elif name.endswith("ffn1_gemm"):
            write(out, read(node.inputs[0]) @ self._layer_weights(name).ffn_w1)
        elif name.endswith("ffn_bias_gelu"):
            lw = self._layer_weights(name)
            write(out, add_bias_gelu(read(node.inputs[0]).copy(), lw.ffn_b1))
        elif name.endswith("ffn2_gemm"):
            write(out, read(node.inputs[0]) @ self._layer_weights(name).ffn_w2)
        elif name.endswith("ffn_add"):
            lw = self._layer_weights(name)
            write(out, read(node.inputs[0]) + lw.ffn_b2 + read(node.inputs[1]))
        elif name.endswith("ffn_ln"):
            lw = self._layer_weights(name)
            write(out, layernorm_one_pass(
                read(node.inputs[0]), lw.ffn_ln_gamma, lw.ffn_ln_beta,
                eps=self.config.layer_norm_eps,
            ))
        else:
            raise ExecutionError(f"no numeric interpretation for node {name!r}")
        return out

    # -- introspection ---------------------------------------------------------

    def arena_bytes(self) -> int:
        """Total planned arena bytes of the last run."""
        if self.last_plan is None:
            raise ExecutionError("run() has not been called yet")
        return self.last_plan.footprint_bytes
