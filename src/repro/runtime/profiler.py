"""Warm-up cost profiling: the ``cached_cost`` table of Algorithm 3.

After a service starts, the paper runs the runtime across all feasible
(sequence length, batch size) pairs and persists the measured latencies;
the DP batch scheduler then prices candidate batches from this table.  Here
the table wraps :meth:`InferenceRuntime.latency` with length bucketing
(rounding a length *up* to the nearest profiled one is safe: padded
execution cost is monotone in length) and optional JSON persistence —
mirroring the paper's store-on-disk/database behaviour.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from .base import InferenceRuntime


class CostTable:
    """``cached_cost[seq_len][batch_size] -> seconds`` (paper Alg. 3 input).

    ``interpolate=True`` prices lengths between profiled grid points by
    linear interpolation instead of rounding up to the next bucket —
    tighter estimates at the cost of a weaker guarantee (the bucketed
    value is a safe overestimate because padded execution cost is
    monotone in length).
    """

    def __init__(self, lengths: Iterable[int], max_batch: int,
                 interpolate: bool = False) -> None:
        self.lengths: List[int] = sorted(set(int(x) for x in lengths))
        if not self.lengths or self.lengths[0] <= 0:
            raise ValueError(f"lengths must be positive, got {self.lengths[:3]}...")
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        self.max_batch = max_batch
        self.interpolate = interpolate
        self._table: Dict[int, Dict[int, float]] = {}
        self._bucket_memo: Dict[int, int] = {}

    def bucket(self, seq_len: int) -> int:
        """Smallest profiled length >= seq_len (padding is monotone-safe),
        clamped to the largest profiled length.

        ``self.lengths`` is sorted, so the linear scan this used to do is
        a ``bisect_left``; schedulers price the same handful of lengths
        over and over, so resolved buckets are memoized.
        """
        cached = self._bucket_memo.get(seq_len)
        if cached is not None:
            return cached
        if seq_len <= 0:
            raise ValueError(f"seq_len must be positive, got {seq_len}")
        index = bisect_left(self.lengths, seq_len)
        result = self.lengths[index] if index < len(self.lengths) else self.lengths[-1]
        self._bucket_memo[seq_len] = result
        return result

    def set(self, seq_len: int, batch: int, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError(f"cost must be positive, got {seconds}")
        self._table.setdefault(seq_len, {})[batch] = seconds

    def cost(self, seq_len: int, batch: int) -> float:
        """Latency of a batch of ``batch`` requests padded to ``seq_len``."""
        if batch <= 0 or batch > self.max_batch:
            raise ValueError(f"batch must be in [1, {self.max_batch}], got {batch}")
        if not self.interpolate:
            return self._entry(self.bucket(seq_len), batch)
        upper = self.bucket(seq_len)
        if seq_len >= upper or upper == self.lengths[0]:
            return self._entry(upper, batch)
        lower = max(l for l in self.lengths if l < upper)
        if seq_len <= lower:
            return self._entry(lower, batch)
        low_cost = self._entry(lower, batch)
        high_cost = self._entry(upper, batch)
        t = (seq_len - lower) / (upper - lower)
        return low_cost + t * (high_cost - low_cost)

    def _entry(self, length: int, batch: int) -> float:
        try:
            return self._table[length][batch]
        except KeyError:
            raise KeyError(
                f"cost table has no entry for length {length}, batch {batch}; "
                f"run warm-up profiling first"
            ) from None

    # -- persistence (the paper stores the table in a database/disk) --------

    def to_json(self, path: Union[str, Path]) -> None:
        payload = {
            "lengths": self.lengths,
            "max_batch": self.max_batch,
            "table": {str(k): {str(b): v for b, v in row.items()}
                      for k, row in self._table.items()},
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "CostTable":
        payload = json.loads(Path(path).read_text())
        table = cls(payload["lengths"], payload["max_batch"])
        for length, row in payload["table"].items():
            for batch, seconds in row.items():
                table.set(int(length), int(batch), float(seconds))
        return table


def warmup_profile(
    runtime: InferenceRuntime,
    max_batch: int = 20,
    lengths: Optional[Iterable[int]] = None,
    max_length: int = 512,
    length_step: int = 16,
) -> CostTable:
    """Run the warm-up sweep and build the cost table.

    Default grid: lengths ``{step, 2*step, ..., max_length}`` x batches
    ``1..max_batch``, matching the paper's "all possible batch sizes and
    sequence lengths" at a practical granularity.
    """
    if lengths is None:
        lengths = range(length_step, max_length + 1, length_step)
    table = CostTable(lengths, max_batch)
    for length in table.lengths:
        for batch in range(1, max_batch + 1):
            table.set(length, batch, runtime.latency(batch, length))
    return table
