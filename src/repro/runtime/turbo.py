"""The TurboTransformers runtime (paper §4).

Fused non-GEMM kernels, the XElem batch-reduction implementation, the
sequence-length-aware chunk allocator, no per-dimension preprocessing, and
a thin C++ dispatch layer (~2 µs/op host overhead).
"""

from __future__ import annotations

from typing import Optional

from ..gpusim import RTX_2060, DeviceSpec, ReductionImpl
from ..graph import ComputationGraph
from ..memory import TurboAllocator
from ..models import bert_base, build_encoder_graph
from .base import InferenceRuntime
from .cost import RuntimeCharacteristics

TURBO_CHARACTERISTICS = RuntimeCharacteristics(
    name="TurboTransformers",
    fuse_kernels=True,
    reduction_impl=ReductionImpl.TURBO,
    reduction_x_elems=2,
    gemm_tuning=1.0,
    host_dispatch_s=2e-6,
    fixed_overhead_s=1.0e-3,
    supports_variable_length=True,
    preprocess_s=0.0,
    usage="easy",
)


def turbo_runtime(
    graph: Optional[ComputationGraph] = None,
    device: DeviceSpec = RTX_2060,
    enable_fusion: bool = True,
    enable_memory_manager: bool = True,
    x_elems: int = 2,
    precision_bytes: int = 4,
) -> InferenceRuntime:
    """Build a Turbo runtime; flags exist for the DESIGN.md ablations and
    the FP16 extension (``precision_bytes=2``)."""
    chars = TURBO_CHARACTERISTICS
    if (not enable_fusion or x_elems != chars.reduction_x_elems
            or precision_bytes != chars.precision_bytes):
        from dataclasses import replace

        chars = replace(chars, fuse_kernels=enable_fusion,
                        reduction_x_elems=x_elems,
                        precision_bytes=precision_bytes)
    if graph is None:
        graph = build_encoder_graph(bert_base())
    if precision_bytes != 4:
        from ..graph import cast_graph_precision

        graph = cast_graph_precision(graph, precision_bytes)
    return InferenceRuntime(
        graph=graph,
        chars=chars,
        device=device,
        allocator_factory=TurboAllocator if enable_memory_manager else None,
    )


def turbo_fp16_runtime(
    graph: Optional[ComputationGraph] = None,
    device: DeviceSpec = RTX_2060,
) -> InferenceRuntime:
    """The FP16 extension: half traffic, double math rate, half footprint."""
    return turbo_runtime(graph=graph, device=device, precision_bytes=2)
