"""Latency model for autoregressive generation (GPT-style serving).

Generation cost splits into the *prefill* pass over the prompt and the
per-token *decode* steps against a growing KV cache — the two quantities
generative serving systems report as time-to-first-token (TTFT) and
per-token latency (TPOT).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..gpusim import DeviceSpec, Stream
from ..graph import ComputationGraph, fuse_graph
from .cost import RuntimeCharacteristics, graph_cost


class GenerationRuntime:
    """Prices prefill + decode for a decoder-only model."""

    def __init__(
        self,
        prefill_graph: ComputationGraph,
        decode_graph: ComputationGraph,
        chars: RuntimeCharacteristics,
        device: DeviceSpec,
        stride: int = 8,
        step_overhead_s: float = 0.0,
    ) -> None:
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        if step_overhead_s < 0:
            raise ValueError(f"step_overhead_s must be >= 0, got {step_overhead_s}")
        if chars.fuse_kernels:
            prefill_graph = fuse_graph(prefill_graph)
            decode_graph = fuse_graph(decode_graph)
        self.prefill_graph = prefill_graph
        self.decode_graph = decode_graph
        self.chars = chars
        self.device = device
        self.stride = stride
        self.step_overhead_s = step_overhead_s
        self._prefill_cache: Dict[Tuple[int, int], float] = {}
        self._decode_cache: Dict[Tuple[int, int], float] = {}

    def _run(self, graph: ComputationGraph, bindings: Dict[str, int]) -> float:
        stream = Stream(trace_enabled=False)
        stream.extend(graph_cost(graph.nodes, bindings, self.chars, self.device))
        host_s = self.chars.host_dispatch_s * stream.launches
        return max(stream.elapsed_s, host_s)

    def prefill_latency(self, batch: int, prompt_len: int) -> float:
        """Time-to-first-token: one parallel pass over the prompt."""
        if batch <= 0 or prompt_len <= 0:
            raise ValueError(
                f"batch and prompt_len must be positive, got {batch}, {prompt_len}"
            )
        key = (batch, prompt_len)
        if key not in self._prefill_cache:
            self._prefill_cache[key] = (
                self._run(self.prefill_graph, {"batch": batch, "seq": prompt_len})
                + self.chars.fixed_overhead_s
            )
        return self._prefill_cache[key]

    def decode_step_latency(self, batch: int, past: int) -> float:
        """One generated token against ``past`` cached positions."""
        if batch <= 0 or past <= 0:
            raise ValueError(f"batch and past must be positive, got {batch}, {past}")
        key = (batch, past)
        if key not in self._decode_cache:
            self._decode_cache[key] = (
                self._run(self.decode_graph, {"batch": batch, "past": past})
                + self.step_overhead_s
            )
        return self._decode_cache[key]

    def generate_latency(
        self, prompt_len: int, new_tokens: int, batch: int = 1
    ) -> float:
        """End-to-end: prefill + ``new_tokens`` decode steps (strided sum)."""
        if new_tokens <= 0:
            raise ValueError(f"new_tokens must be positive, got {new_tokens}")
        total = self.prefill_latency(batch, prompt_len)
        step = 0
        while step < new_tokens:
            span = min(self.stride, new_tokens - step)
            total += self.decode_step_latency(batch, prompt_len + step) * span
            step += self.stride
        return total

    def tokens_per_second(self, prompt_len: int, new_tokens: int,
                          batch: int = 1) -> float:
        """Aggregate decode throughput over one generation."""
        total = self.generate_latency(prompt_len, new_tokens, batch)
        return batch * new_tokens / total
