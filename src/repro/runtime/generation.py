"""Latency model for autoregressive generation (GPT-style serving).

Generation cost splits into the *prefill* pass over the prompt and the
per-token *decode* steps against a growing KV cache — the two quantities
generative serving systems report as time-to-first-token (TTFT) and
per-token latency (TPOT).

Observability lives here too, so every consumer — the continuous-batching
server, the request-level generation baseline, the gen experiment and
``python -m repro trace`` — shares one instrumentation path:
:meth:`GenerationRuntime.publish_request_metrics` records a request's
TTFT/TPOT into a :class:`~repro.observability.MetricsRegistry`, and
:meth:`GenerationRuntime.trace_decode_stride` emits one Chrome-trace span
per decode stride on the GPU track.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..gpusim import DeviceSpec, Stream
from ..graph import ComputationGraph, fuse_graph
from .cost import RuntimeCharacteristics, graph_cost


class GenerationRuntime:
    """Prices prefill + decode for a decoder-only model."""

    def __init__(
        self,
        prefill_graph: ComputationGraph,
        decode_graph: ComputationGraph,
        chars: RuntimeCharacteristics,
        device: DeviceSpec,
        stride: int = 8,
        step_overhead_s: float = 0.0,
    ) -> None:
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        if step_overhead_s < 0:
            raise ValueError(f"step_overhead_s must be >= 0, got {step_overhead_s}")
        if chars.fuse_kernels:
            prefill_graph = fuse_graph(prefill_graph)
            decode_graph = fuse_graph(decode_graph)
        self.prefill_graph = prefill_graph
        self.decode_graph = decode_graph
        self.chars = chars
        self.device = device
        self.stride = stride
        self.step_overhead_s = step_overhead_s
        self._prefill_cache: Dict[Tuple[int, int], float] = {}
        self._decode_cache: Dict[Tuple[int, int], float] = {}

    def _run(self, graph: ComputationGraph, bindings: Dict[str, int]) -> float:
        stream = Stream(trace_enabled=False)
        stream.extend(graph_cost(graph.nodes, bindings, self.chars, self.device))
        host_s = self.chars.host_dispatch_s * stream.launches
        return max(stream.elapsed_s, host_s)

    def prefill_latency(self, batch: int, prompt_len: int) -> float:
        """Time-to-first-token: one parallel pass over the prompt."""
        if batch <= 0 or prompt_len <= 0:
            raise ValueError(
                f"batch and prompt_len must be positive, got {batch}, {prompt_len}"
            )
        key = (batch, prompt_len)
        if key not in self._prefill_cache:
            self._prefill_cache[key] = (
                self._run(self.prefill_graph, {"batch": batch, "seq": prompt_len})
                + self.chars.fixed_overhead_s
            )
        return self._prefill_cache[key]

    def decode_step_latency(self, batch: int, past: int) -> float:
        """One generated token against ``past`` cached positions."""
        if batch <= 0 or past <= 0:
            raise ValueError(f"batch and past must be positive, got {batch}, {past}")
        key = (batch, past)
        if key not in self._decode_cache:
            self._decode_cache[key] = (
                self._run(self.decode_graph, {"batch": batch, "past": past})
                + self.step_overhead_s
            )
        return self._decode_cache[key]

    def generate_latency(
        self, prompt_len: int, new_tokens: int, batch: int = 1
    ) -> float:
        """End-to-end: prefill + ``new_tokens`` decode steps (strided sum)."""
        if new_tokens <= 0:
            raise ValueError(f"new_tokens must be positive, got {new_tokens}")
        total = self.prefill_latency(batch, prompt_len)
        step = 0
        while step < new_tokens:
            span = min(self.stride, new_tokens - step)
            total += self.decode_step_latency(batch, prompt_len + step) * span
            step += self.stride
        return total

    def tokens_per_second(self, prompt_len: int, new_tokens: int,
                          batch: int = 1) -> float:
        """Aggregate decode throughput over one generation."""
        total = self.generate_latency(prompt_len, new_tokens, batch)
        return batch * new_tokens / total

    # -- shared instrumentation path ------------------------------------------

    def publish_request_metrics(self, metrics, req_id: int, ttft_s: float,
                                tpot_s: float, system: str = "generation",
                                ) -> None:
        """Record one request's TTFT/TPOT into a metrics registry.

        Every generative-serving consumer funnels through this method so
        histograms carry identical names/labels regardless of which loop
        produced them.
        """
        if metrics is None:
            return
        metrics.histogram("generation_ttft_ms", system=system).observe(
            ttft_s * 1e3
        )
        metrics.histogram("generation_tpot_ms", system=system).observe(
            tpot_s * 1e3
        )
        metrics.counter("generation_requests_total", system=system).inc()

    def trace_decode_stride(self, tracer, start_s: float, dur_s: float,
                            batch: int, past: int, tokens: int) -> None:
        """One Chrome-trace span for a decode stride on the GPU track."""
        if tracer is None or not tracer.enabled:
            return
        tracer.complete(
            f"decode x{batch}", start_s, dur_s, tid="gpu", cat="decode",
            batch=batch, past=past, tokens=tokens,
        )

    def trace_prefill(self, tracer, start_s: float, dur_s: float,
                      batch: int, prompt_len: int) -> None:
        """One Chrome-trace span for a prefill pass on the GPU track."""
        if tracer is None or not tracer.enabled:
            return
        tracer.complete(
            f"prefill x{batch}", start_s, dur_s, tid="gpu", cat="prefill",
            batch=batch, prompt_len=prompt_len,
        )

    def generate_timeline(self, prompt_len: int, new_tokens: int,
                          batch: int = 1, start_s: float = 0.0,
                          tracer=None, metrics=None,
                          system: str = "generation") -> "GenerationTimeline":
        """Instrumented :meth:`generate_latency`: same strided walk, but
        emitting one span per decode stride (plus the prefill span) and
        publishing TTFT/TPOT, all in the caller's simulated time frame."""
        if new_tokens <= 0:
            raise ValueError(f"new_tokens must be positive, got {new_tokens}")
        clock = start_s
        prefill_s = self.prefill_latency(batch, prompt_len)
        self.trace_prefill(tracer, clock, prefill_s, batch, prompt_len)
        clock += prefill_s
        ttft_s = clock - start_s
        stride_ends: List[float] = []
        # Identical strided walk to generate_latency, so the two agree
        # bit for bit on the total.
        step = 0
        while step < new_tokens:
            span = min(self.stride, new_tokens - step)
            past = prompt_len + step
            dur = self.decode_step_latency(batch, past) * span
            self.trace_decode_stride(tracer, clock, dur, batch, past,
                                     tokens=span * batch)
            clock += dur
            stride_ends.append(clock)
            step += span
        total_s = clock - start_s
        tpot_s = ((total_s - ttft_s) / new_tokens
                  if new_tokens > 0 else 0.0)
        self.publish_request_metrics(metrics, req_id=-1, ttft_s=ttft_s,
                                     tpot_s=tpot_s, system=system)
        return GenerationTimeline(ttft_s=ttft_s, total_s=total_s,
                                  tpot_s=tpot_s, stride_ends=stride_ends)


@dataclass(frozen=True)
class GenerationTimeline:
    """Per-request timing of one instrumented generation."""

    ttft_s: float
    total_s: float
    tpot_s: float
    stride_ends: Tuple[float, ...] | List[float]
