"""Labeled counters / gauges / histograms with JSON export.

A :class:`MetricsRegistry` is the numeric half of the observability layer
(the :mod:`~repro.observability.tracer` is the temporal half).  Instruments
are keyed by ``(name, sorted(labels))`` and created on first touch, so call
sites never pre-register anything::

    registry = MetricsRegistry()
    registry.counter("serving_batches_executed_total", scheduler="dp").inc()
    registry.gauge("allocator_footprint_bytes", allocator="turbo").set(2e6, t=3)
    registry.histogram("batch_size").observe(17)
    registry.save("metrics.json")

Everything is stdlib-only and deterministic: export order is sorted by
``(name, labels)``, so two identical runs produce identical JSON.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (geometric, unitless); the final
#: +inf bucket is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000,
)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically increasing count (events, hits, batches, ...)."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def to_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


@dataclass
class Gauge:
    """Point-in-time value; optionally keeps a ``(t, value)`` time series.

    ``set(v)`` updates the current value; ``set(v, t=...)`` additionally
    appends a sample, which is how footprint / queue-depth series are built
    (``t`` is whatever clock the caller lives on — virtual seconds for the
    serving simulator, request ordinals for allocators).
    """

    name: str
    labels: LabelKey = ()
    value: float = 0.0
    series: List[Tuple[float, float]] = field(default_factory=list)

    def set(self, value: float, t: Optional[float] = None) -> None:
        self.value = float(value)
        if t is not None:
            self.series.append((float(t), float(value)))

    def add(self, delta: float) -> None:
        self.value += delta

    def to_dict(self) -> dict:
        out = {"name": self.name, "labels": dict(self.labels), "value": self.value}
        if self.series:
            out["series"] = [[t, v] for t, v in self.series]
        return out


@dataclass
class Histogram:
    """Fixed-bucket histogram with sum/count and nearest-bucket quantiles."""

    name: str
    labels: LabelKey = ()
    buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError(f"bucket bounds must be sorted, got {self.buckets}")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)  # last = +inf overflow

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q``-quantile sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.buckets[i] if i < len(self.buckets) else float("inf")
        return float("inf")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create home for every instrument of one run."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- instrument accessors -------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, key[1])
        return inst

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, key[1])
        return inst

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None,
                  **labels: str) -> Histogram:
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(
                name, key[1],
                buckets=tuple(buckets) if buckets is not None else DEFAULT_BUCKETS,
            )
        return inst

    # -- lookup helpers (tests / reconciliation) ------------------------------

    def value(self, name: str, **labels: str) -> float:
        """Current value of a counter or gauge (0.0 if never touched)."""
        key = (name, _label_key(labels))
        inst = self._counters.get(key) or self._gauges.get(key)
        return inst.value if inst is not None else 0.0

    def sum_values(self, name: str) -> float:
        """Sum of a counter's value across all label sets."""
        return sum(c.value for (n, _), c in self._counters.items() if n == name)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> dict:
        def ordered(d):
            return [d[k].to_dict() for k in sorted(d)]

        return {
            "counters": ordered(self._counters),
            "gauges": ordered(self._gauges),
            "histograms": ordered(self._histograms),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())
