"""Run one fully instrumented serving workload (the ``repro trace`` CLI).

Builds a Turbo runtime over a real model graph, derives the serving cost
function from it (so the runtime's allocator produces genuine hit/miss
traffic while the cost table warms), generates a Poisson workload, and
runs the discrete-event server with a :class:`Tracer` and a
:class:`MetricsRegistry` attached.  Deterministic given ``seed``: the same
invocation yields byte-identical trace and metrics JSON.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .metrics import MetricsRegistry
from .tracer import Tracer

SCHEDULERS = ("dp", "dp-pruned", "naive", "nobatch", "continuous")
POLICIES = ("hungry", "lazy")
MODELS = ("tiny", "base")


@dataclass
class TraceRunResult:
    """Everything one traced run produced (CLI writes, tests reconcile)."""

    serving: object  # repro.serving.ServingMetrics
    registry: MetricsRegistry
    tracer: Tracer
    runtime: object  # repro.runtime.base.InferenceRuntime
    requests: List[object]


def _build_scheduler(name: str):
    from ..serving import (
        DPBatchScheduler,
        NaiveBatchScheduler,
        NoBatchScheduler,
        PrunedDPBatchScheduler,
    )

    return {
        "dp": DPBatchScheduler,
        "dp-pruned": PrunedDPBatchScheduler,
        "naive": NaiveBatchScheduler,
        "nobatch": NoBatchScheduler,
    }[name]()


def _build_policy(name: str, max_batch: int):
    from ..serving import HungryPolicy, LazyPolicy

    if name == "hungry":
        return HungryPolicy()
    return LazyPolicy(max_batch=max_batch)


def run_traced_workload(
    model: str = "tiny",
    rate_per_s: float = 200.0,
    duration_s: float = 0.5,
    seed: int = 0,
    scheduler: str = "dp",
    policy: str = "hungry",
    max_batch: int = 16,
    max_len: int = 128,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> TraceRunResult:
    """Simulate serving with full observability attached.

    ``max_len`` caps sampled request lengths (keeps the cost table small —
    the default 128 warms in well under a second on the tiny model).
    """
    if model not in MODELS:
        raise ValueError(f"model must be one of {MODELS}, got {model!r}")
    if scheduler not in SCHEDULERS:
        raise ValueError(f"scheduler must be one of {SCHEDULERS}, got {scheduler!r}")
    if policy not in POLICIES:
        raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")

    tracer = tracer if tracer is not None else Tracer(process_name="repro trace")
    registry = registry if registry is not None else MetricsRegistry()

    if scheduler == "continuous":
        # Generative path: GPT model, iteration-level loop, KV arena.
        return _run_traced_generation(model, rate_per_s, duration_s, seed,
                                      tracer, registry)

    from ..models import bert_base, build_encoder_graph, tiny_bert
    from ..runtime import turbo_runtime
    from ..serving import (
        MIN_LEN,
        ServingConfig,
        generate_requests,
        normal_lengths,
        simulate_serving,
    )

    config = tiny_bert() if model == "tiny" else bert_base()
    graph = build_encoder_graph(config)
    runtime = turbo_runtime(graph=graph)
    # Attach the registry to the runtime's allocator so cost-table warming
    # publishes genuine hit/miss counters and the footprint series.
    if runtime.allocator is not None:
        runtime.allocator.metrics = registry

    def cost_fn(seq_len: int, batch: int) -> float:
        return runtime.latency(batch, seq_len)

    def lengths(rng, n):
        return normal_lengths(rng, n, lo=MIN_LEN, hi=max_len)

    requests = generate_requests(rate_per_s, duration_s, seed=seed,
                                 length_sampler=lengths)
    serving = simulate_serving(
        requests,
        _build_scheduler(scheduler),
        cost_fn,
        config=ServingConfig(max_batch=max_batch,
                             policy=_build_policy(policy, max_batch)),
        duration_s=duration_s,
        tracer=tracer,
        metrics=registry,
    )
    # Publish the host-fast-path counters (compiled-model evals, records
    # memo, plan cache) so the metrics JSON and Chrome trace show them.
    runtime.publish_host_metrics(registry, tracer=tracer,
                                 now_s=duration_s)
    return TraceRunResult(
        serving=serving,
        registry=registry,
        tracer=tracer,
        runtime=runtime,
        requests=list(requests),
    )


def _run_traced_generation(
    model: str,
    rate_per_s: float,
    duration_s: float,
    seed: int,
    tracer: Tracer,
    registry: MetricsRegistry,
) -> TraceRunResult:
    """Instrumented continuous-batching run (``--scheduler continuous``).

    One Chrome-trace span per prefill pass and per decode step, async
    spans per request, KV-arena counters on the track; TTFT/TPOT
    histograms flow through the shared
    :meth:`~repro.runtime.GenerationRuntime.publish_request_metrics` path.
    """
    from ..experiments.gen_serving_throughput import GenServingBench

    bench = GenServingBench(model="tiny" if model == "tiny" else "small")
    # Keep the default mix (the bench's first) out of it: sample the
    # standard workload so the trace shows mixed output lengths.
    from ..serving import generate_generation_requests, uniform_lengths

    def prompts(rng, n):
        return uniform_lengths(rng, n, lo=bench.prompt_lo, hi=bench.prompt_hi)

    requests = generate_generation_requests(
        rate_per_s, duration_s, seed=seed, prompt_sampler=prompts
    )
    serving = bench.run_continuous(requests, duration_s, tracer=tracer,
                                   metrics=registry)
    return TraceRunResult(
        serving=serving,
        registry=registry,
        tracer=tracer,
        runtime=bench.runtime,
        requests=list(requests),
    )
