"""End-to-end observability: metrics registry + request/kernel tracer.

Three pieces (ISSUE 1):

* :class:`MetricsRegistry` — labeled counters / gauges / histograms with
  deterministic JSON export;
* :class:`Tracer` — per-request spans and per-batch/per-kernel timeline
  events in Chrome ``trace_event`` JSON (``chrome://tracing`` / Perfetto);
* :class:`NullTracer` / :data:`NULL_TRACER` — the disabled-by-default fast
  path: no-op emitters, so instrumented hot loops cost nothing when
  observability is off.

``repro.observability.harness.run_traced_workload`` (lazily re-exported
here) runs one fully instrumented serving workload; ``python -m repro
trace`` is its CLI face.  This package itself depends only on the stdlib
so every other layer can import it freely.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracer import (
    NULL_TRACER,
    VALID_PHASES,
    NullTracer,
    Tracer,
    validate_trace_dict,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "VALID_PHASES",
    "validate_trace_dict",
    "run_traced_workload",
    "TraceRunResult",
]


def __getattr__(name: str):
    # The harness pulls in serving/runtime/models; importing it lazily keeps
    # this package dependency-free so those same layers can import us.
    if name in ("run_traced_workload", "TraceRunResult"):
        from . import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
