"""Per-request spans and kernel timeline events, Chrome-trace exportable.

The :class:`Tracer` records events against whatever clock the caller lives
on (the serving simulator passes virtual seconds; the numeric executor
passes host wall seconds via :meth:`Tracer.wall_now`) and exports them in
the Chrome ``trace_event`` JSON format, loadable in ``chrome://tracing``
or https://ui.perfetto.dev.

Event vocabulary used across the repo:

* **complete events** (``ph="X"``) — one box per batch execution or kernel
  launch on a named track (``tid``);
* **async events** (``ph="b"/"n"/"e"``) — one open-ended span per request,
  carrying its lifecycle (enqueue → scheduled → execute → complete) with
  queue-depth / padding-overhead attributes;
* **counter events** (``ph="C"``) — stacked time series (queue depth,
  allocator footprint).

The disabled-by-default fast path is :class:`NullTracer` (singleton
:data:`NULL_TRACER`): every emit method is an early-return no-op and
``enabled`` is False, so instrumented hot loops can guard expensive
attribute computation with ``if tracer.enabled:`` and pay nothing when
observability is off.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

#: One virtual/host second in trace-event timestamp units (microseconds).
_US = 1e6


class Tracer:
    """Accumulates Chrome ``trace_event`` dicts.

    Parameters
    ----------
    process_name:
        Shown as the process label in the trace viewer.
    """

    enabled: bool = True

    def __init__(self, process_name: str = "repro") -> None:
        self.events: List[dict] = []
        self._thread_names: Dict[Union[int, str], str] = {}
        self._wall_epoch = time.perf_counter()  # repro: allow(DET402)
        if process_name:
            self.events.append({
                "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
                "args": {"name": process_name},
            })

    # -- clocks ---------------------------------------------------------------

    def wall_now(self) -> float:
        """Host seconds since this tracer was created (for real execution;
        simulated components pass their own virtual timestamps instead)."""
        return time.perf_counter() - self._wall_epoch  # repro: allow(DET402)

    # -- track naming ---------------------------------------------------------

    def thread_name(self, tid: Union[int, str], name: str) -> None:
        """Label a track; idempotent per tid."""
        if self._thread_names.get(tid) == name:
            return
        self._thread_names[tid] = name
        self.events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
            "args": {"name": name},
        })

    # -- emitters -------------------------------------------------------------

    def complete(self, name: str, start_s: float, dur_s: float,
                 tid: Union[int, str] = 0, cat: str = "event",
                 **args: object) -> None:
        """A box on track ``tid`` spanning ``[start_s, start_s + dur_s]``."""
        self.events.append({
            "name": name, "cat": cat, "ph": "X", "pid": 0, "tid": tid,
            "ts": start_s * _US, "dur": max(0.0, dur_s) * _US,
            "args": dict(args),
        })

    def instant(self, name: str, ts_s: float, tid: Union[int, str] = 0,
                cat: str = "event", **args: object) -> None:
        """A thread-scoped instant marker."""
        self.events.append({
            "name": name, "cat": cat, "ph": "i", "s": "t", "pid": 0,
            "tid": tid, "ts": ts_s * _US, "args": dict(args),
        })

    def counter(self, name: str, ts_s: float, values: Dict[str, float]) -> None:
        """A sample of one or more stacked series under ``name``."""
        self.events.append({
            "name": name, "cat": "counter", "ph": "C", "pid": 0, "tid": 0,
            "ts": ts_s * _US, "args": {k: float(v) for k, v in values.items()},
        })

    def async_begin(self, name: str, ts_s: float, async_id: Union[int, str],
                    cat: str = "request", **args: object) -> None:
        """Open an async span (one per request; nests nothing)."""
        self.events.append({
            "name": name, "cat": cat, "ph": "b", "id": async_id, "pid": 0,
            "tid": 0, "ts": ts_s * _US, "args": dict(args),
        })

    def async_instant(self, name: str, ts_s: float, async_id: Union[int, str],
                      cat: str = "request", **args: object) -> None:
        """A milestone inside an open async span."""
        self.events.append({
            "name": name, "cat": cat, "ph": "n", "id": async_id, "pid": 0,
            "tid": 0, "ts": ts_s * _US, "args": dict(args),
        })

    def async_end(self, name: str, ts_s: float, async_id: Union[int, str],
                  cat: str = "request", **args: object) -> None:
        """Close an async span."""
        self.events.append({
            "name": name, "cat": cat, "ph": "e", "id": async_id, "pid": 0,
            "tid": 0, "ts": ts_s * _US, "args": dict(args),
        })

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.observability"},
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    def __len__(self) -> int:
        return len(self.events)


class NullTracer(Tracer):
    """Observability off: every emitter is a no-op, ``enabled`` is False.

    Instrumented code holds one of these by default, so the hot loops pay a
    single attribute check (or nothing at all where call sites guard with
    ``tracer.enabled``) and runs are bit-identical to uninstrumented code.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(process_name="")

    def wall_now(self) -> float:  # noqa: D102 - trivially documented above
        return 0.0

    def thread_name(self, tid, name) -> None:
        pass

    def complete(self, name, start_s, dur_s, tid=0, cat="event", **args) -> None:
        pass

    def instant(self, name, ts_s, tid=0, cat="event", **args) -> None:
        pass

    def counter(self, name, ts_s, values) -> None:
        pass

    def async_begin(self, name, ts_s, async_id, cat="request", **args) -> None:
        pass

    def async_instant(self, name, ts_s, async_id, cat="request", **args) -> None:
        pass

    def async_end(self, name, ts_s, async_id, cat="request", **args) -> None:
        pass


#: Shared disabled tracer; use as the default for optional ``tracer`` params.
NULL_TRACER = NullTracer()

#: Phases a valid trace event may carry (schema check in tests/CLI).
VALID_PHASES = frozenset({"X", "i", "C", "b", "n", "e", "M"})


def validate_trace_dict(trace: dict) -> List[str]:
    """Structural check of a Chrome ``trace_event`` export.

    Returns a list of problems (empty = valid); used by the CLI and by the
    schema tests rather than raising, so callers can report all issues.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            problems.append(f"{where}: missing name")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if ph in ("b", "n", "e") and "id" not in ev:
            problems.append(f"{where}: async event without id")
        if "pid" not in ev or "tid" not in ev:
            problems.append(f"{where}: missing pid/tid")
    return problems
