"""Computation-graph representation, fusion pass and lifetime analysis."""

from .fusion import count_kernels, eliminated_tensor_names, fuse_graph
from .graph import ComputationGraph, GraphError
from .lifetime import UsageRecordTemplates, tensor_usage_records
from .node import OpNode, OpType
from .serialize import graph_from_dict, graph_to_dict, load_graph, save_graph
from .tensor import Dim, DimBindings, TensorKind, TensorSpec, resolve_dim
from .transform import cast_graph_precision, graph_weight_bytes

__all__ = [
    "ComputationGraph",
    "GraphError",
    "OpNode",
    "OpType",
    "TensorSpec",
    "TensorKind",
    "Dim",
    "DimBindings",
    "resolve_dim",
    "fuse_graph",
    "count_kernels",
    "eliminated_tensor_names",
    "tensor_usage_records",
    "UsageRecordTemplates",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "cast_graph_precision",
    "graph_weight_bytes",
]
