"""Symbolic tensor specs with variable-length dimensions.

The whole point of the paper is that intermediate tensor shapes depend on
the *request's* batch size and sequence length, which are only known when
the request arrives.  A :class:`TensorSpec` therefore stores each dimension
as either a concrete ``int`` or a symbol name (``"batch"``, ``"seq"``, …);
:meth:`TensorSpec.shape` resolves it against a binding such as
``{"batch": 20, "seq": 128}`` supplied per request.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Mapping, Tuple, Union

Dim = Union[int, str]
DimBindings = Mapping[str, int]


class TensorKind(enum.Enum):
    """Lifetime class of a tensor; the allocator only plans INTERMEDIATEs."""

    INPUT = "input"
    WEIGHT = "weight"
    INTERMEDIATE = "intermediate"
    OUTPUT = "output"


def resolve_dim(dim: Dim, bindings: DimBindings) -> int:
    """Resolve one symbolic dimension against request bindings."""
    if isinstance(dim, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("dimension cannot be a bool")
    if isinstance(dim, int):
        if dim <= 0:
            raise ValueError(f"concrete dims must be positive, got {dim}")
        return dim
    try:
        value = bindings[dim]
    except KeyError:
        raise KeyError(f"unbound symbolic dimension {dim!r}; have {sorted(bindings)}") from None
    if value <= 0:
        raise ValueError(f"binding {dim!r}={value} must be positive")
    return value


@dataclass(frozen=True)
class TensorSpec:
    """Named tensor with (possibly symbolic) dimensions.

    Attributes
    ----------
    name: unique within a graph.
    dims: tuple of ints and/or symbol names.
    kind: lifetime class (inputs/weights persist; intermediates are planned).
    dtype_bytes: element width (4 for the FP32 models served by the paper).
    """

    name: str
    dims: Tuple[Dim, ...]
    kind: TensorKind = TensorKind.INTERMEDIATE
    dtype_bytes: int = 4

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tensor name must be non-empty")
        if not self.dims:
            raise ValueError(f"tensor {self.name!r} needs at least one dim")
        if self.dtype_bytes <= 0:
            raise ValueError(f"dtype_bytes must be positive, got {self.dtype_bytes}")
        for dim in self.dims:
            if not isinstance(dim, (int, str)) or isinstance(dim, bool):
                raise TypeError(f"dim {dim!r} of {self.name!r} must be int or str")
            if isinstance(dim, int) and dim <= 0:
                raise ValueError(f"dim {dim} of {self.name!r} must be positive")
            if isinstance(dim, str) and not dim:
                raise ValueError(f"symbolic dim of {self.name!r} must be non-empty")

    @property
    def symbols(self) -> Tuple[str, ...]:
        """Symbol names this tensor's shape depends on (deduplicated, ordered)."""
        seen = []
        for dim in self.dims:
            if isinstance(dim, str) and dim not in seen:
                seen.append(dim)
        return tuple(seen)

    @property
    def is_variable(self) -> bool:
        """True if any dimension is symbolic (changes per request)."""
        return bool(self.symbols)

    def shape(self, bindings: DimBindings) -> Tuple[int, ...]:
        """Concrete shape under the given request bindings."""
        return tuple(resolve_dim(d, bindings) for d in self.dims)

    def numel(self, bindings: DimBindings) -> int:
        """Element count under the given bindings."""
        return math.prod(self.shape(bindings))

    def nbytes(self, bindings: DimBindings) -> int:
        """Byte size under the given bindings."""
        return self.numel(bindings) * self.dtype_bytes
