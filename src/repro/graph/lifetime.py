"""Tensor lifetime analysis: graph + request dims -> usage records.

This is the bridge between the computation graph and the sequence-length-
aware allocator: once the request's ``(batch, seq_len)`` is known, every
intermediate tensor's byte size becomes concrete and its ``[first_op,
last_op]`` interval follows from the topological order (paper §4.2).
"""

from __future__ import annotations

from typing import Dict, List

from ..memory.records import TensorUsageRecord
from .graph import ComputationGraph
from .tensor import DimBindings, TensorKind


def tensor_usage_records(
    graph: ComputationGraph, bindings: DimBindings
) -> List[TensorUsageRecord]:
    """Compute usage records for every intermediate tensor of ``graph``.

    ``first_op`` is the producer's position in the topological order;
    ``last_op`` is the last consumer's position (or the producer's, for
    graph outputs that no later node reads).
    """
    graph.validate()
    order = graph.topo_sort()
    position: Dict[int, int] = {node_idx: pos for pos, node_idx in enumerate(order)}
    producers = graph.producer_index()
    consumers = graph.consumer_indices()

    records: List[TensorUsageRecord] = []
    for spec in graph.tensors.values():
        if spec.kind is not TensorKind.INTERMEDIATE:
            continue
        first = position[producers[spec.name]]
        uses = [position[c] for c in consumers[spec.name]]
        last = max(uses) if uses else first
        records.append(
            TensorUsageRecord(
                name=spec.name,
                first_op=first,
                last_op=last,
                size=spec.nbytes(bindings),
            )
        )
    return records
