"""Tensor lifetime analysis: graph + request dims -> usage records.

This is the bridge between the computation graph and the sequence-length-
aware allocator: once the request's ``(batch, seq_len)`` is known, every
intermediate tensor's byte size becomes concrete and its ``[first_op,
last_op]`` interval follows from the topological order (paper §4.2).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..memory.records import TensorUsageRecord
from .graph import ComputationGraph
from .tensor import DimBindings, TensorKind, resolve_dim


def tensor_usage_records(
    graph: ComputationGraph, bindings: DimBindings
) -> List[TensorUsageRecord]:
    """Compute usage records for every intermediate tensor of ``graph``.

    ``first_op`` is the producer's position in the topological order;
    ``last_op`` is the last consumer's position (or the producer's, for
    graph outputs that no later node reads).
    """
    graph.validate()
    order = graph.topo_sort()
    position: Dict[int, int] = {node_idx: pos for pos, node_idx in enumerate(order)}
    producers = graph.producer_index()
    consumers = graph.consumer_indices()

    records: List[TensorUsageRecord] = []
    for spec in graph.tensors.values():
        if spec.kind is not TensorKind.INTERMEDIATE:
            continue
        first = position[producers[spec.name]]
        uses = [position[c] for c in consumers[spec.name]]
        last = max(uses) if uses else first
        records.append(
            TensorUsageRecord(
                name=spec.name,
                first_op=first,
                last_op=last,
                size=spec.nbytes(bindings),
            )
        )
    return records


class UsageRecordTemplates:
    """Shape-independent usage-record structure, compiled once per graph.

    The ``[first_op, last_op]`` lifetime intervals and the record order are
    properties of the graph alone; only the byte sizes depend on the
    request's bindings, and each size is an exact integer product
    ``const * prod(bindings[symbol])``.  :meth:`evaluate` therefore
    produces records identical to :func:`tensor_usage_records` — same
    order, same fields, same integers — in one multiply per symbol per
    tensor instead of a full validate/topo-sort/consumer sweep.

    Like the compiled cost model, evaluation assumes positive integer
    bindings; unbound symbols raise ``KeyError``.
    """

    def __init__(self, graph: ComputationGraph) -> None:
        # Run the interpretive analysis machinery once to fix lifetimes.
        graph.validate()
        order = graph.topo_sort()
        position: Dict[int, int] = {n: p for p, n in enumerate(order)}
        producers = graph.producer_index()
        consumers = graph.consumer_indices()
        #: (name, first_op, last_op, const_bytes, symbol names) per record.
        self.templates: List[Tuple[str, int, int, int, Tuple[str, ...]]] = []
        for spec in graph.tensors.values():
            if spec.kind is not TensorKind.INTERMEDIATE:
                continue
            first = position[producers[spec.name]]
            uses = [position[c] for c in consumers[spec.name]]
            last = max(uses) if uses else first
            const = spec.dtype_bytes
            symbols: List[str] = []
            for dim in spec.dims:
                if isinstance(dim, str):
                    symbols.append(dim)
                else:
                    const *= resolve_dim(dim, {})  # validates the literal
            self.templates.append(
                (spec.name, first, last, const, tuple(symbols))
            )

    def evaluate(self, bindings: DimBindings) -> List[TensorUsageRecord]:
        """Records under ``bindings`` — identical to the interpretive sweep."""
        out: List[TensorUsageRecord] = []
        for name, first, last, const, symbols in self.templates:
            size = const
            for symbol in symbols:
                size *= bindings[symbol]
            out.append(TensorUsageRecord(name=name, first_op=first,
                                         last_op=last, size=size))
        return out

    def __len__(self) -> int:
        return len(self.templates)
