"""Kernel fusion pass (paper §4.1.1, Fig. 3).

The transformer graph is reorganized by fusing *every* run of non-GEMM
nodes between two GEMM barriers into a single kernel.  Fusion has two
effects, both modeled downstream:

* fewer kernel launches and fewer memory passes (priced by
  :mod:`repro.runtime.cost`), and
* tensors that are produced *and* fully consumed inside one fused region
  never materialize in global memory at all, so they disappear from the
  allocation plan (observed by the Fig. 7 experiments).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from .graph import ComputationGraph
from .node import OpNode, OpType
from .tensor import TensorKind


def _external_io(
    run: Sequence[OpNode], consumers_after: Dict[str, bool], tensors: ComputationGraph
) -> tuple:
    """Split a run's tensors into external inputs, external outputs and
    internal (eliminated) tensors."""
    produced: Set[str] = set()
    for node in run:
        produced.update(node.outputs)
    ext_inputs: List[str] = []
    for node in run:
        for inp in node.inputs:
            if inp not in produced and inp not in ext_inputs:
                ext_inputs.append(inp)
    ext_outputs: List[str] = []
    internal: List[str] = []
    for node in run:
        for out in node.outputs:
            spec = tensors.tensors[out]
            escapes = consumers_after.get(out, False) or spec.kind is TensorKind.OUTPUT
            if escapes:
                if out not in ext_outputs:
                    ext_outputs.append(out)
            else:
                internal.append(out)
    return ext_inputs, ext_outputs, internal


def fuse_graph(graph: ComputationGraph) -> ComputationGraph:
    """Return a new graph with non-GEMM runs collapsed into FUSED nodes.

    Runs of length 1 are left as-is (nothing to fuse).  The input graph is
    not modified.
    """
    graph.validate()
    # For each tensor, does any node *outside* a candidate run consume it?
    # We compute, for every tensor, the set of consuming node indices, and
    # during the scan check whether a consumer lies beyond the current run.
    consumers = graph.consumer_indices()

    fused = ComputationGraph(name=f"{graph.name}.fused")
    runs: List[List[int]] = []
    current: List[int] = []
    for i, node in enumerate(graph.nodes):
        if node.is_fusion_barrier:
            if current:
                runs.append(current)
                current = []
            runs.append([i])  # barrier as singleton run
        else:
            current.append(i)
    if current:
        runs.append(current)

    # Determine which tensors survive, then register them.
    eliminated: Set[str] = set()
    new_nodes: List[OpNode] = []
    for run_indices in runs:
        run = [graph.nodes[i] for i in run_indices]
        if len(run) == 1:
            # Barriers and fusable runs of one pass through unchanged.
            new_nodes.append(run[0])
            continue
        last_idx = run_indices[-1]
        consumers_after = {
            out: any(c > last_idx for c in consumers[out])
            for node in run
            for out in node.outputs
        }
        ext_in, ext_out, internal = _external_io(run, consumers_after, graph)
        eliminated.update(internal)
        fused_attrs = {
            "fused_ops": [
                {
                    "name": n.name,
                    "op_type": n.op_type.value,
                    "attrs": dict(n.attrs),
                    "inputs": list(n.inputs),
                    "outputs": list(n.outputs),
                }
                for n in run
            ],
            "eliminated_tensors": list(internal),
        }
        new_nodes.append(
            OpNode(
                name="fused(" + "+".join(n.name for n in run) + ")",
                op_type=OpType.FUSED,
                inputs=tuple(ext_in),
                outputs=tuple(ext_out),
                attrs=fused_attrs,
            )
        )

    for name, spec in graph.tensors.items():
        if name not in eliminated:
            fused.add_tensor(spec)
    for node in new_nodes:
        fused.nodes.append(node)
    fused.validate()
    return fused


def count_kernels(graph: ComputationGraph) -> int:
    """Number of kernel launches one inference through this graph costs."""
    return len(graph.nodes)


def eliminated_tensor_names(graph: ComputationGraph) -> List[str]:
    """Tensors removed by fusion (for memory-plan assertions in tests)."""
    names: List[str] = []
    for node in graph.nodes:
        if node.op_type is OpType.FUSED:
            names.extend(node.attrs.get("eliminated_tensors", []))
    return names
