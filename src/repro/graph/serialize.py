"""Computation-graph serialization (an onnx-like interchange format).

The real TurboTransformers loads pre-trained framework models and rewrites
their graphs; this module provides the equivalent persistence layer for
the reproduction: a stable JSON schema for :class:`ComputationGraph` so
graphs can be exported, versioned and reloaded without rebuilding from the
model definition.  Weight *values* are stored separately (see
:mod:`repro.models.io`) — the graph carries structure only.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from .graph import ComputationGraph, GraphError
from .node import OpNode, OpType
from .tensor import TensorKind, TensorSpec

#: Schema version; bump on breaking format changes.
SCHEMA_VERSION = 1


def graph_to_dict(graph: ComputationGraph) -> Dict[str, Any]:
    """Serialize a graph to plain JSON-compatible structures."""
    graph.validate()
    return {
        "schema_version": SCHEMA_VERSION,
        "name": graph.name,
        "tensors": [
            {
                "name": spec.name,
                "dims": list(spec.dims),
                "kind": spec.kind.value,
                "dtype_bytes": spec.dtype_bytes,
            }
            for spec in graph.tensors.values()
        ],
        "nodes": [
            {
                "name": node.name,
                "op_type": node.op_type.value,
                "inputs": list(node.inputs),
                "outputs": list(node.outputs),
                "attrs": _encode_attrs(node.attrs),
            }
            for node in graph.nodes
        ],
    }


def graph_from_dict(payload: Dict[str, Any]) -> ComputationGraph:
    """Rebuild a graph from :func:`graph_to_dict` output (validated)."""
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise GraphError(
            f"unsupported graph schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    graph = ComputationGraph(name=payload["name"])
    for t in payload["tensors"]:
        graph.add_tensor(
            TensorSpec(
                name=t["name"],
                dims=tuple(t["dims"]),
                kind=TensorKind(t["kind"]),
                dtype_bytes=t["dtype_bytes"],
            )
        )
    for n in payload["nodes"]:
        graph.nodes.append(
            OpNode(
                name=n["name"],
                op_type=OpType(n["op_type"]),
                inputs=tuple(n["inputs"]),
                outputs=tuple(n["outputs"]),
                attrs=_decode_attrs(n["attrs"]),
            )
        )
        for tensor_name in graph.nodes[-1].inputs + graph.nodes[-1].outputs:
            if tensor_name not in graph.tensors:
                raise GraphError(
                    f"node {n['name']!r} references unknown tensor {tensor_name!r}"
                )
    graph.validate()
    return graph


def save_graph(graph: ComputationGraph, path: Union[str, Path]) -> None:
    """Write the graph as JSON to ``path``."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=1))


def load_graph(path: Union[str, Path]) -> ComputationGraph:
    """Read a graph previously written by :func:`save_graph`."""
    return graph_from_dict(json.loads(Path(path).read_text()))


# -- attr encoding -----------------------------------------------------------
#
# Attrs are JSON-safe except tuples (symbolic dim products), which JSON
# would silently flatten into lists; tag them so round-trips are exact.


def _encode_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    return {key: _encode_value(value) for key, value in attrs.items()}


def _encode_value(value: Any) -> Any:
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(v) for v in value]}
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    if isinstance(value, dict):
        return {k: _encode_value(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"attr value {value!r} is not serializable")


def _decode_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    return {key: _decode_value(value) for key, value in attrs.items()}


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__tuple__"}:
            return tuple(_decode_value(v) for v in value["__tuple__"])
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value
