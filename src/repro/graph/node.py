"""Operator nodes of the computation graph."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


class OpType(enum.Enum):
    """Kernel category of a node.

    GEMM nodes are fusion *barriers* (they map to cuBLAS); everything else
    is a fusion candidate.  ``FUSED`` nodes are produced by the fusion pass
    and carry their constituent ops in ``attrs["fused_ops"]``.
    """

    GEMM = "gemm"
    BATCHED_GEMM = "batched_gemm"
    SOFTMAX = "softmax"
    LAYERNORM = "layernorm"
    ELEMENTWISE = "elementwise"
    TRANSPOSE = "transpose"
    EMBEDDING = "embedding"
    FUSED = "fused"

    @property
    def is_gemm(self) -> bool:
        return self in (OpType.GEMM, OpType.BATCHED_GEMM)


@dataclass(frozen=True)
class OpNode:
    """One operator: consumes input tensors, produces output tensors.

    ``attrs`` carries cost-relevant parameters, e.g. GEMM ``m/n/k`` dims
    (symbolic, resolved per request), softmax row shapes, elementwise pass
    counts.  Attrs are free-form by design: the cost model in
    :mod:`repro.runtime.cost` interprets them per ``op_type``.
    """

    name: str
    op_type: OpType
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    attrs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("op name must be non-empty")
        if not self.outputs:
            raise ValueError(f"op {self.name!r} must produce at least one tensor")
        if len(set(self.outputs)) != len(self.outputs):
            raise ValueError(f"op {self.name!r} lists duplicate outputs")

    @property
    def is_fusion_barrier(self) -> bool:
        """GEMMs and embeddings are not fused (cuBLAS / gather kernels)."""
        return self.op_type.is_gemm or self.op_type is OpType.EMBEDDING
