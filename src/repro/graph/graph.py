"""Computation graph container: nodes are operators, edges are tensors."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .node import OpNode, OpType
from .tensor import Dim, TensorKind, TensorSpec


class GraphError(ValueError):
    """Structural problem with a computation graph."""


@dataclass
class ComputationGraph:
    """A DAG of :class:`OpNode` connected by named :class:`TensorSpec` edges.

    Builders append nodes in execution order; :meth:`validate` checks that
    this order is a topological order (every input is an INPUT/WEIGHT tensor
    or produced by an earlier node) and that tensors have unique producers.
    """

    name: str
    nodes: List[OpNode] = field(default_factory=list)
    tensors: Dict[str, TensorSpec] = field(default_factory=dict)

    # -- construction ------------------------------------------------------

    def add_tensor(self, spec: TensorSpec) -> TensorSpec:
        if spec.name in self.tensors:
            raise GraphError(f"duplicate tensor {spec.name!r} in graph {self.name!r}")
        self.tensors[spec.name] = spec
        return spec

    def tensor(
        self,
        name: str,
        dims: Tuple[Dim, ...],
        kind: TensorKind = TensorKind.INTERMEDIATE,
        dtype_bytes: int = 4,
    ) -> TensorSpec:
        """Convenience constructor + registration."""
        return self.add_tensor(TensorSpec(name, dims, kind, dtype_bytes))

    def add_node(
        self,
        name: str,
        op_type: OpType,
        inputs: Iterable[str],
        outputs: Iterable[str],
        **attrs: Any,
    ) -> OpNode:
        node = OpNode(name, op_type, tuple(inputs), tuple(outputs), attrs)
        for t in node.inputs + node.outputs:
            if t not in self.tensors:
                raise GraphError(f"op {name!r} references unknown tensor {t!r}")
        if any(n.name == name for n in self.nodes):
            raise GraphError(f"duplicate op name {name!r} in graph {self.name!r}")
        self.nodes.append(node)
        return node

    # -- queries -----------------------------------------------------------

    def producer_index(self) -> Dict[str, int]:
        """Map tensor name -> index of the node that produces it."""
        producers: Dict[str, int] = {}
        for i, node in enumerate(self.nodes):
            for out in node.outputs:
                if out in producers:
                    raise GraphError(
                        f"tensor {out!r} produced by both node "
                        f"{self.nodes[producers[out]].name!r} and {node.name!r}"
                    )
                producers[out] = i
        return producers

    def consumer_indices(self) -> Dict[str, List[int]]:
        """Map tensor name -> sorted indices of consuming nodes."""
        consumers: Dict[str, List[int]] = {name: [] for name in self.tensors}
        for i, node in enumerate(self.nodes):
            for inp in node.inputs:
                consumers[inp].append(i)
        return consumers

    def validate(self) -> None:
        """Check topological node order and tensor kinds; raises GraphError."""
        produced: set = set()
        producers = self.producer_index()
        for name, spec in self.tensors.items():
            if spec.kind is TensorKind.INTERMEDIATE and name not in producers:
                raise GraphError(f"intermediate tensor {name!r} has no producer")
        for node in self.nodes:
            for inp in node.inputs:
                spec = self.tensors[inp]
                if spec.kind in (TensorKind.INPUT, TensorKind.WEIGHT):
                    continue
                if inp not in produced:
                    raise GraphError(
                        f"op {node.name!r} consumes {inp!r} before it is produced "
                        f"(node order is not topological)"
                    )
            produced.update(node.outputs)

    def topo_sort(self) -> List[int]:
        """Kahn topological sort; returns node indices.

        The builders already emit nodes in order, but the allocator's
        tensor-lifetime indices are defined against *the* topological order
        (Alg. 1), so we recompute it rather than trust insertion order.
        """
        producers = self.producer_index()
        n = len(self.nodes)
        adj: List[List[int]] = [[] for _ in range(n)]
        indeg = [0] * n
        for i, node in enumerate(self.nodes):
            for inp in node.inputs:
                j = producers.get(inp)
                if j is not None and j != i:
                    adj[j].append(i)
                    indeg[i] += 1
        ready = deque(i for i in range(n) if indeg[i] == 0)
        order: List[int] = []
        while ready:
            i = ready.popleft()
            order.append(i)
            for k in adj[i]:
                indeg[k] -= 1
                if indeg[k] == 0:
                    ready.append(k)
        if len(order) != n:
            raise GraphError(f"graph {self.name!r} contains a cycle")
        return order

    def intermediates(self) -> List[TensorSpec]:
        return [t for t in self.tensors.values() if t.kind is TensorKind.INTERMEDIATE]

    def weights(self) -> List[TensorSpec]:
        return [t for t in self.tensors.values() if t.kind is TensorKind.WEIGHT]

    def find_node(self, name: str) -> Optional[OpNode]:
        for node in self.nodes:
            if node.name == name:
                return node
        return None

    def gemm_nodes(self) -> List[OpNode]:
        return [n for n in self.nodes if n.op_type.is_gemm]

    def __len__(self) -> int:
        return len(self.nodes)
