"""Whole-graph transformations beyond fusion.

Currently: precision casting (the FP16 extension).  The paper serves FP32;
casting the graph to FP16 halves every activation/weight tensor and lets
the cost model price half-precision kernels.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from .graph import ComputationGraph
from .tensor import TensorKind

#: Tensor kinds affected by a precision cast (integer inputs keep their width).
_CASTABLE = (TensorKind.INTERMEDIATE, TensorKind.OUTPUT, TensorKind.WEIGHT)


def cast_graph_precision(
    graph: ComputationGraph,
    dtype_bytes: int,
    kinds: Tuple[TensorKind, ...] = _CASTABLE,
) -> ComputationGraph:
    """Return a copy of ``graph`` with float tensors at ``dtype_bytes`` wide.

    Only tensors of the given ``kinds`` are re-typed; INPUT tensors (token
    ids) keep their integer width.  Node structure and attrs are shared
    with the original (they are immutable).
    """
    if dtype_bytes not in (2, 4):
        raise ValueError(f"dtype_bytes must be 2 or 4, got {dtype_bytes}")
    cast = ComputationGraph(name=f"{graph.name}.fp{dtype_bytes * 8}")
    for spec in graph.tensors.values():
        if spec.kind in kinds:
            cast.add_tensor(replace(spec, dtype_bytes=dtype_bytes))
        else:
            cast.add_tensor(spec)
    cast.nodes.extend(graph.nodes)
    cast.validate()
    return cast


def graph_weight_bytes(graph: ComputationGraph) -> int:
    """Total parameter bytes of the graph's WEIGHT tensors (all concrete)."""
    total = 0
    for spec in graph.tensors.values():
        if spec.kind is TensorKind.WEIGHT:
            total += spec.nbytes({})
    return total
