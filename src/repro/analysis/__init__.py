"""Static analysis: graph/plan/schedule verifiers, determinism linter,
and the engine-trace sanitizer.

Six checker families behind one CLI (``python -m repro check``), all
reporting through the unified :class:`Diagnostic` framework with stable
codes (``GRAPH1xx``/``MEM2xx``/``SCHED3xx``/``DET4xx``/``ENG5xx``/
``LIFE6xx``):

* :mod:`.graph_checks` — shape/dtype propagation, dead code, and
  fusion-legality (IO-equivalence) verification;
* :mod:`.memory_checks` — allocation-plan bounds/aliasing verification,
  cross-request aliasing, fragmentation reporting;
* :mod:`.schedule_checks` — happens-before race detection over
  multi-stream :class:`~repro.gpusim.multistream.StreamSchedule` programs;
* :mod:`.determinism` — AST lint for unseeded RNG, wall-clock reads,
  unordered-set iteration and engine-API misuse, with
  ``# repro: allow(<code>)`` pragmas;
* :mod:`.engine_checks` — the :class:`EngineTraceRecorder` (hooks into
  the live engine/request/KV-arena/breaker layers) plus trace verifiers
  for clock/dispatch sanity (ENG5xx), request-lifecycle invariants
  (LIFE6xx) and KV token conservation (MEM22x);
* :mod:`.sanitizer` — seeded serving and chaos scenarios executed under
  the recorder (``repro check --sanitize <scenario>``).
"""

from .check import (
    FAMILIES,
    build_serving_schedule,
    builtin_graphs,
    default_lint_root,
    default_lint_roots,
    plan_double_buffered,
    run_check,
    run_determinism_checks,
    run_engine_lifecycle_checks,
    run_graph_checks,
    run_memory_checks,
    run_schedule_checks,
)
from .determinism import lint_file, lint_paths, lint_source, parse_pragmas
from .diagnostics import (
    CATALOG_FAMILIES,
    CODES,
    Diagnostic,
    DiagnosticReport,
    Location,
    Severity,
    catalog_family,
    code_title,
    default_severity,
    diag,
    render_code_catalog,
    report_from_dicts,
)
from .engine_checks import (
    EngineTraceRecorder,
    verify_engine_trace,
    verify_kv_ledger,
    verify_lifecycle,
    verify_trace,
)
from .sanitizer import (
    TRACE_SCENARIOS,
    ScenarioOutcome,
    run_sanitized,
    run_scenario_trace,
    run_trace_checks,
    sanitize_scenarios,
)
from .graph_checks import check_fusion, check_graph, fusion_invariant_holds
from .memory_checks import (
    ChunkStats,
    FragmentationReport,
    check_cross_request,
    check_fragmentation,
    check_plan,
    fragmentation_report,
)
from .schedule_checks import (
    check_emitted_schedules,
    check_schedule,
    schedule_is_race_free,
)

__all__ = [
    "CODES",
    "Severity",
    "Location",
    "Diagnostic",
    "DiagnosticReport",
    "diag",
    "code_title",
    "default_severity",
    "report_from_dicts",
    "check_graph",
    "check_fusion",
    "fusion_invariant_holds",
    "check_plan",
    "check_cross_request",
    "check_fragmentation",
    "fragmentation_report",
    "FragmentationReport",
    "ChunkStats",
    "check_schedule",
    "check_emitted_schedules",
    "schedule_is_race_free",
    "ScenarioOutcome",
    "lint_source",
    "lint_file",
    "lint_paths",
    "parse_pragmas",
    "FAMILIES",
    "run_check",
    "run_graph_checks",
    "run_memory_checks",
    "run_schedule_checks",
    "run_determinism_checks",
    "run_engine_lifecycle_checks",
    "builtin_graphs",
    "build_serving_schedule",
    "plan_double_buffered",
    "default_lint_root",
    "default_lint_roots",
    "CATALOG_FAMILIES",
    "catalog_family",
    "render_code_catalog",
    "EngineTraceRecorder",
    "verify_engine_trace",
    "verify_lifecycle",
    "verify_kv_ledger",
    "verify_trace",
    "TRACE_SCENARIOS",
    "run_scenario_trace",
    "run_sanitized",
    "run_trace_checks",
    "sanitize_scenarios",
]
