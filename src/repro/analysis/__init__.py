"""Static analysis: graph/plan/schedule verifiers + determinism linter.

Four checker families behind one CLI (``python -m repro check``), all
reporting through the unified :class:`Diagnostic` framework with stable
codes (``GRAPH1xx``/``MEM2xx``/``SCHED3xx``/``DET4xx``):

* :mod:`.graph_checks` — shape/dtype propagation, dead code, and
  fusion-legality (IO-equivalence) verification;
* :mod:`.memory_checks` — allocation-plan bounds/aliasing verification,
  cross-request aliasing, fragmentation reporting;
* :mod:`.schedule_checks` — happens-before race detection over
  multi-stream :class:`~repro.gpusim.multistream.StreamSchedule` programs;
* :mod:`.determinism` — AST lint for unseeded RNG, wall-clock reads and
  unordered-set iteration, with ``# repro: allow(<code>)`` pragmas.
"""

from .check import (
    FAMILIES,
    build_serving_schedule,
    builtin_graphs,
    plan_double_buffered,
    run_check,
    run_determinism_checks,
    run_graph_checks,
    run_memory_checks,
    run_schedule_checks,
)
from .determinism import lint_file, lint_paths, lint_source, parse_pragmas
from .diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticReport,
    Location,
    Severity,
    code_title,
    default_severity,
    diag,
    report_from_dicts,
)
from .graph_checks import check_fusion, check_graph, fusion_invariant_holds
from .memory_checks import (
    ChunkStats,
    FragmentationReport,
    check_cross_request,
    check_fragmentation,
    check_plan,
    fragmentation_report,
)
from .schedule_checks import check_schedule, schedule_is_race_free

__all__ = [
    "CODES",
    "Severity",
    "Location",
    "Diagnostic",
    "DiagnosticReport",
    "diag",
    "code_title",
    "default_severity",
    "report_from_dicts",
    "check_graph",
    "check_fusion",
    "fusion_invariant_holds",
    "check_plan",
    "check_cross_request",
    "check_fragmentation",
    "fragmentation_report",
    "FragmentationReport",
    "ChunkStats",
    "check_schedule",
    "schedule_is_race_free",
    "lint_source",
    "lint_file",
    "lint_paths",
    "parse_pragmas",
    "FAMILIES",
    "run_check",
    "run_graph_checks",
    "run_memory_checks",
    "run_schedule_checks",
    "run_determinism_checks",
    "builtin_graphs",
    "build_serving_schedule",
    "plan_double_buffered",
]
