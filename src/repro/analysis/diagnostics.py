"""Unified diagnostic framework for the static-analysis layer.

Every checker family (graph, memory, schedule, determinism) reports
problems as :class:`Diagnostic` values carrying a *stable code* (e.g.
``GRAPH101``), a severity, a location and a human-readable message.
Stable codes let CI suppress or grep for specific bug classes and let
``# repro: allow(<code>)`` pragmas target exactly one rule.

A :class:`DiagnosticReport` aggregates diagnostics across families and
renders them as text (one line per diagnostic, compiler style) or JSON
(a versioned, deterministic document for CI artifacts and golden tests).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple


class Severity(enum.Enum):
    """How bad a diagnostic is; ERRORs fail ``python -m repro check``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: Registry of every stable diagnostic code, its default severity and a
#: short title.  Checkers may only emit codes listed here (enforced by
#: :meth:`Diagnostic.__post_init__`), so the documentation in
#: ``docs/API.md`` cannot silently drift from the implementation.
CODES: Dict[str, Tuple[Severity, str]] = {
    # -- graph checkers (GRAPH1xx) ----------------------------------------
    "GRAPH101": (Severity.ERROR, "shape propagation mismatch"),
    "GRAPH102": (Severity.ERROR, "dtype mismatch across an op"),
    "GRAPH103": (Severity.WARNING, "dangling tensor (never produced or consumed)"),
    "GRAPH104": (Severity.WARNING, "dead node (outputs never consumed)"),
    "GRAPH105": (Severity.ERROR, "structural graph error (cycle/order/producer)"),
    "GRAPH110": (Severity.ERROR, "fusion changed the graph's external IO"),
    "GRAPH111": (Severity.ERROR, "fusion eliminated a tensor that escapes"),
    "GRAPH112": (Severity.ERROR, "fusion barrier swallowed into a fused node"),
    # -- memory-plan verifier (MEM2xx) ------------------------------------
    "MEM201": (Severity.ERROR, "plan does not cover the usage records"),
    "MEM202": (Severity.ERROR, "placement outside its chunk"),
    "MEM203": (Severity.ERROR, "live tensors alias within a chunk"),
    "MEM204": (Severity.ERROR, "cross-request placements alias"),
    "MEM210": (Severity.INFO, "chunk fragmentation report"),
    "MEM211": (Severity.WARNING, "chunk utilization below threshold"),
    "MEM220": (Severity.ERROR, "KV-cache arena plan violation"),
    "MEM221": (Severity.ERROR, "KV region outlives its request (leak)"),
    "MEM222": (Severity.ERROR, "KV token-conservation ledger divergence"),
    "MEM223": (Severity.ERROR, "KV restore without a matching preempt"),
    "MEM224": (Severity.ERROR, "KV page refcount diverges from its references"),
    # -- schedule race detector (SCHED3xx) ---------------------------------
    "SCHED301": (Severity.ERROR, "read-after-write hazard across streams"),
    "SCHED302": (Severity.ERROR, "write-after-read hazard across streams"),
    "SCHED303": (Severity.ERROR, "write-after-write hazard across streams"),
    "SCHED310": (Severity.ERROR, "wait on an event that was never recorded"),
    "SCHED311": (Severity.ERROR,
                 "chunked-prefill round schedule race/missing-sync"),
    # -- determinism linter (DET4xx) ---------------------------------------
    "DET400": (Severity.ERROR, "source file failed to parse"),
    "DET401": (Severity.ERROR, "unseeded random number generation"),
    "DET402": (Severity.ERROR, "wall-clock read in a simulation path"),
    "DET403": (Severity.WARNING, "iteration over an unordered set"),
    "DET404": (Severity.WARNING, "pragma references an unknown code"),
    "DET405": (Severity.ERROR, "direct heapq use outside the engine"),
    "DET406": (Severity.ERROR, "VirtualClock mutated outside the engine"),
    "DET407": (Severity.WARNING, "TRIGGER scheduled outside ensure_trigger"),
    # -- engine-trace sanitizer (ENG5xx) -----------------------------------
    "ENG501": (Severity.ERROR, "virtual clock moved backwards in trace"),
    "ENG502": (Severity.ERROR, "event dispatched off its scheduled time"),
    "ENG503": (Severity.ERROR, "lost wakeup: engine quiescent with live requests"),
    # -- request-lifecycle sanitizer (LIFE6xx) -----------------------------
    "LIFE601": (Severity.ERROR, "admitted request never reached a terminal state"),
    "LIFE602": (Severity.ERROR, "request resolved terminally more than once"),
    "LIFE603": (Severity.ERROR, "completion inside its replica's crash window"),
    "LIFE604": (Severity.ERROR, "retries exceed the attempt/budget limits"),
    "LIFE605": (Severity.ERROR, "completion before arrival"),
    "LIFE606": (Severity.ERROR, "illegal circuit-breaker transition"),
}

#: Code-prefix → catalog family, in rendering order.  Drives
#: :func:`render_code_catalog`, which regenerates the ``docs/API.md``
#: table so the documentation is derived from (not parallel to) the
#: registry; ``tests/analysis/test_code_catalog.py`` pins the two.
CATALOG_FAMILIES: Tuple[Tuple[str, str, str], ...] = (
    # (family label, first code inclusive, last code inclusive)
    ("graph", "GRAPH101", "GRAPH109"),
    ("fusion", "GRAPH110", "GRAPH199"),
    ("memory", "MEM200", "MEM299"),
    ("schedule", "SCHED300", "SCHED399"),
    ("determinism", "DET400", "DET499"),
    ("engine", "ENG500", "ENG599"),
    ("lifecycle", "LIFE600", "LIFE699"),
)


def catalog_family(code: str) -> str:
    """The docs-catalog family a code belongs to."""
    for family, lo, hi in CATALOG_FAMILIES:
        if lo <= code <= hi:
            return family
    raise ValueError(f"code {code!r} fits no catalog family")


def render_code_catalog() -> str:
    """Render the stable-code catalog as a markdown table.

    One row per family, codes in registry order; non-error severities are
    tagged ``(warn)`` / ``(info)`` like the hand-written table this
    replaces.  The output is embedded verbatim in ``docs/API.md`` between
    ``CODE CATALOG`` markers and pinned by a drift test.
    """
    tags = {Severity.WARNING: " (warn)", Severity.INFO: " (info)"}
    rows: Dict[str, List[str]] = {family: [] for family, _, _ in
                                  CATALOG_FAMILIES}
    for code, (severity, title) in CODES.items():
        rows[catalog_family(code)].append(
            f"`{code}` {title}{tags.get(severity, '')}")
    lines = ["| family | codes |", "|---|---|"]
    for family, _, _ in CATALOG_FAMILIES:
        lines.append(f"| {family} | " + ", ".join(rows[family]) + " |")
    return "\n".join(lines)


def default_severity(code: str) -> Severity:
    return CODES[code][0]


def code_title(code: str) -> str:
    return CODES[code][1]


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points: a source line, a graph node, a chunk, …

    All fields are optional; checkers fill whichever apply.  ``__str__``
    renders a compact compiler-style prefix such as
    ``src/repro/foo.py:12`` or ``graph bert, node l0.softmax``.
    """

    file: Optional[str] = None
    line: Optional[int] = None
    graph: Optional[str] = None
    node: Optional[str] = None

    def __str__(self) -> str:
        parts: List[str] = []
        if self.file is not None:
            parts.append(f"{self.file}:{self.line}" if self.line is not None
                         else self.file)
        if self.graph is not None:
            parts.append(f"graph {self.graph}")
        if self.node is not None:
            parts.append(f"node {self.node}")
        return ", ".join(parts) if parts else "<global>"

    def sort_key(self) -> Tuple:
        return (self.file or "", self.line or 0, self.graph or "", self.node or "")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for key in ("file", "line", "graph", "node"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one checker, with a stable code."""

    code: str
    message: str
    severity: Severity = field(default=None)  # type: ignore[assignment]
    location: Location = field(default_factory=Location)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}; "
                             f"register it in analysis.diagnostics.CODES")
        if self.severity is None:
            object.__setattr__(self, "severity", default_severity(self.code))
        if not self.message:
            raise ValueError(f"{self.code}: message must be non-empty")

    def render(self) -> str:
        return f"{self.severity.value}[{self.code}] {self.location}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "location": self.location.to_dict(),
            "message": self.message,
        }


def diag(code: str, message: str, *, severity: Optional[Severity] = None,
         **loc: Any) -> Diagnostic:
    """Convenience constructor: ``diag("MEM203", "...", graph="bert")``."""
    return Diagnostic(code=code, message=message,
                      severity=severity,  # type: ignore[arg-type]
                      location=Location(**loc))


@dataclass
class DiagnosticReport:
    """Aggregated diagnostics plus bookkeeping about what was checked."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Free-form, JSON-safe facts about coverage ("graphs_checked": 7, …).
    checked: Dict[str, Any] = field(default_factory=dict)

    def add(self, *diags: Diagnostic) -> None:
        self.diagnostics.extend(diags)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def merge(self, other: "DiagnosticReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.checked.update(other.checked)

    # -- queries -----------------------------------------------------------

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def counts(self) -> Dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for d in self.diagnostics:
            out[d.severity.value] += 1
        return out

    def sorted(self) -> List[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (d.severity.rank, d.code, d.location.sort_key(),
                           d.message),
        )

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- reporters ---------------------------------------------------------

    def render_text(self, *, max_info: Optional[int] = None) -> str:
        """Compiler-style listing, errors first, plus a summary line."""
        lines: List[str] = []
        shown_info = 0
        for d in self.sorted():
            if (max_info is not None and d.severity is Severity.INFO):
                shown_info += 1
                if shown_info > max_info:
                    continue
            lines.append(d.render())
        counts = self.counts()
        for key, value in sorted(self.checked.items()):
            lines.append(f"checked: {key} = {value}")
        lines.append(
            f"summary: {counts['error']} error(s), {counts['warning']} "
            f"warning(s), {counts['info']} info"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "summary": self.counts(),
            "checked": dict(sorted(self.checked.items())),
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)


def report_from_dicts(payload: Mapping[str, Any]) -> DiagnosticReport:
    """Rebuild a report from :meth:`DiagnosticReport.to_dict` output
    (used by tests and tooling that post-process the JSON artifact)."""
    report = DiagnosticReport(checked=dict(payload.get("checked", {})))
    for entry in payload.get("diagnostics", []):
        report.add(
            Diagnostic(
                code=entry["code"],
                message=entry["message"],
                severity=Severity(entry["severity"]),
                location=Location(**entry.get("location", {})),
            )
        )
    return report
