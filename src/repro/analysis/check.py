"""``python -m repro check`` driver: run every checker family.

One call sweeps:

1. **Graphs** — every built-in model builder (BERT/ALBERT base + tiny,
   Seq2Seq decode step, GPT prefill + decode step) through the
   shape/dtype/dead-code checkers, each both raw and after fusion
   (fusion-legality verification included).
2. **Memory** — each graph's usage records planned by the
   :class:`~repro.memory.TurboAllocator` at two sequence lengths, the
   resulting plans verified (bounds, live aliasing) and fragmentation
   reported; plus a double-buffered two-request scenario checked for
   cross-request aliasing.
3. **Schedule** — a seeded two-stream copy/compute serving schedule
   (H2D -> compute -> D2H per request, event-synced, double-buffered
   across two compute streams) through the happens-before race detector.
4. **Determinism** — the AST linter (unseeded RNG, wall-clock reads,
   unordered iteration, engine-API misuse) over the ``repro`` package
   *and* the repo ``tests/`` tree.
5. **Engine / lifecycle** — the trace sanitizer
   (:mod:`repro.analysis.sanitizer`): real seeded serving runs on every
   loop (one-shot, Ebird, cluster, continuous) recorded through
   :class:`~repro.analysis.engine_checks.EngineTraceRecorder` and
   verified for clock/dispatch sanity (ENG5xx), request-lifecycle
   invariants (LIFE6xx) and KV token conservation (MEM22x).

Everything is deterministic given ``seed``: two runs of
``repro check --format json`` produce byte-identical documents.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph import ComputationGraph, fuse_graph, tensor_usage_records
from ..graph.graph import GraphError
from ..gpusim.multistream import StreamSchedule
from ..memory.plan import AllocationPlan, Placement
from ..memory.records import TensorUsageRecord
from ..memory.turbo import TurboAllocator
from .determinism import lint_paths
from .diagnostics import DiagnosticReport, diag
from .graph_checks import check_fusion, check_graph
from .memory_checks import (
    check_cross_request,
    check_fragmentation,
    check_plan,
)
from .schedule_checks import check_schedule

#: Checker families accepted by ``--family``/``--families``.
FAMILIES = ("graph", "memory", "schedule", "determinism", "engine",
            "lifecycle")


def builtin_graphs() -> List[Tuple[str, ComputationGraph, Dict[str, int]]]:
    """(label, graph, canonical bindings) for every built-in builder."""
    from ..models import (
        albert_base,
        bert_base,
        build_albert_graph,
        build_decode_step_graph,
        build_decoder_step_graph,
        build_encoder_graph,
        build_prefill_graph,
        gpt_small,
        seq2seq_decoder,
        tiny_albert,
        tiny_bert,
        tiny_gpt,
    )

    encoder = {"batch": 4, "seq": 64}
    decode = {"batch": 4, "past": 32}
    step = {"beam": 4, "tgt_pos": 16, "src_len": 24}
    return [
        ("bert-base", build_encoder_graph(bert_base()), encoder),
        ("bert-tiny", build_encoder_graph(tiny_bert()), encoder),
        ("albert-base", build_albert_graph(albert_base()), encoder),
        ("albert-tiny", build_albert_graph(tiny_albert()), encoder),
        ("seq2seq-step", build_decoder_step_graph(seq2seq_decoder()), step),
        ("gpt-prefill", build_prefill_graph(gpt_small()), encoder),
        ("gpt-decode", build_decode_step_graph(tiny_gpt()), decode),
    ]


# ---------------------------------------------------------------------------
# Family sweeps
# ---------------------------------------------------------------------------


def run_graph_checks(
    graphs: Optional[Sequence[Tuple[str, ComputationGraph, Dict[str, int]]]] = None,
) -> DiagnosticReport:
    report = DiagnosticReport()
    graphs = builtin_graphs() if graphs is None else graphs
    fused_ok = 0
    for _label, graph, bindings in graphs:
        report.extend(check_graph(graph, bindings))
        fusion_diags = check_fusion(graph)
        report.extend(fusion_diags)
        if not fusion_diags:
            fused_ok += 1
        # The fused graph is what the Turbo runtime executes — check it too.
        try:
            report.extend(check_graph(fuse_graph(graph), bindings))
        except GraphError:
            pass  # already reported by check_fusion
    report.checked["graphs"] = len(graphs)
    report.checked["fusions_verified"] = fused_ok
    return report


def run_memory_checks(
    graphs: Optional[Sequence[Tuple[str, ComputationGraph, Dict[str, int]]]] = None,
    seq_lens: Sequence[int] = (32, 128),
) -> DiagnosticReport:
    report = DiagnosticReport()
    graphs = builtin_graphs() if graphs is None else graphs
    plans = 0
    for label, graph, bindings in graphs:
        fused = fuse_graph(graph)
        allocator = TurboAllocator()
        for seq_len in seq_lens:
            request = dict(bindings)
            # Vary whichever length-like symbol the graph actually uses.
            for symbol in ("seq", "past", "tgt_pos", "src_len"):
                if symbol in request:
                    request[symbol] = seq_len
            records = tensor_usage_records(fused, request)
            plan = allocator.plan(records)
            plans += 1
            report.extend(check_plan(plan, records, graph=fused.name))
            report.extend(check_fragmentation(plan, records, graph=fused.name))
    report.extend(_double_buffered_cross_request_diags())
    report.checked["plans"] = plans
    report.checked["cross_request_pairs"] = 1
    report.checked["kv_arena_plans"] = _kv_arena_diags(report)
    return report


def _kv_arena_diags(report: DiagnosticReport) -> int:
    """Scripted KV-arena episode: verify the arena's allocation plan after
    every mutation kind (admit / grow across a page boundary / release /
    preempt / restore), then audit the leak invariant — no region may
    outlive its request (MEM221) — and run the page-sharing stages:
    prefix-index attach, copy-on-write fork, preemption of a region whose
    pages siblings still reference, and index eviction, each followed by
    the MEM224 refcount-conservation audit (every live page's refcount
    equals the number of regions + index entries referencing it; no page
    freed — or resident — without a reference).

    Returns the number of plans verified; any MEM2xx diagnostic the arena
    plan trips lands in ``report`` like a regular plan check.
    """
    from ..memory import KVCacheArena, RadixPrefixIndex

    arena = KVCacheArena(capacity_bytes=64 * 1024, bytes_per_token=64,
                         page_tokens=8)
    verified = 0

    def verify(stage: str, live=None) -> None:
        nonlocal verified
        for problem in arena.verify(live_req_ids=live):
            if "leak" in problem:
                code = "MEM221"
            elif "refcount" in problem:
                code = "MEM224"
            else:
                code = "MEM220"
            report.add(diag(code, f"[{stage}] {problem}",
                            graph="kv-arena"))
        verified += 1

    for req_id in range(6):
        arena.admit(req_id, prompt_tokens=16 + 8 * req_id,
                    max_total_tokens=64 + 8 * req_id)
    verify("admit")
    for req_id in range(6):
        arena.append(req_id, tokens=9)  # crosses a page boundary
    verify("grow")
    for req_id in (1, 3, 5):
        arena.release(req_id)
    verify("release")
    # Preemption churn: evict a survivor, restore it with its grown
    # prefix, and audit that exactly the live set holds regions.
    arena.preempt(4)
    verify("preempt", live=[0, 2])
    arena.restore(4, tokens=16 + 8 * 4 + 9, max_total_tokens=64 + 8 * 4)
    verify("restore", live=[0, 2, 4])
    # Page sharing: publish request 0's full prompt pages to a prefix
    # index, admit a newcomer attaching that cached prefix, and CoW-fork
    # request 2 — three regions plus the index now share pages.
    index = RadixPrefixIndex(arena)
    ids = tuple(range(16 + 9))  # request 0's 25-token prompt+growth
    index.insert(ids, arena.region_of(0).pages[:2])
    matched, pages = index.lookup(ids)
    arena.admit(6, prompt_tokens=len(ids), max_total_tokens=48,
                shared_pages=pages)
    arena.fork(2, 7, max_total_tokens=64 + 8 * 2)
    verify("share", live=[0, 2, 4, 6, 7])
    # Preempting the publisher must keep the shared pages resident (index
    # + newcomer still reference them); releasing the fork parent must
    # keep the child's shared pages alive.
    arena.preempt(0)
    arena.release(2)
    verify("cow-release", live=[4, 6, 7])
    # Drain the regions, then evict the cached pages from the index: the
    # arena must end empty with every refcount at zero.
    for req_id in (4, 6, 7):
        arena.release(req_id)
    verify("index-only", live=[])
    index.clear()
    verify("drain", live=[])
    return verified


def plan_double_buffered(
    records_a: Sequence[TensorUsageRecord],
    records_b: Sequence[TensorUsageRecord],
) -> Dict[str, Tuple[AllocationPlan, Sequence[TensorUsageRecord]]]:
    """Plan two concurrently-live requests into one shared chunk space.

    Each request gets its own :class:`TurboAllocator` (its own per-stream
    chunk pool, as a double-buffered server would); request B's chunk ids
    are shifted past A's so both plans address one device-wide chunk-id
    space with disjoint chunks.
    """
    plan_a = TurboAllocator().plan(records_a)
    plan_b = TurboAllocator().plan(records_b)
    shift = max(plan_a.chunk_sizes, default=-1) + 1
    shifted = AllocationPlan(
        placements={
            name: Placement(p.chunk_id + shift, p.offset)
            for name, p in plan_b.placements.items()
        },
        chunk_sizes={
            cid + shift: size for cid, size in plan_b.chunk_sizes.items()
        },
    )
    return {"req-a": (plan_a, records_a), "req-b": (shifted, records_b)}


def _double_buffered_records() -> Tuple[List[TensorUsageRecord], List[TensorUsageRecord]]:
    from ..models import build_encoder_graph, tiny_bert

    fused = fuse_graph(build_encoder_graph(tiny_bert()))
    records_a = tensor_usage_records(fused, {"batch": 2, "seq": 48})
    records_b = tensor_usage_records(fused, {"batch": 2, "seq": 96})
    def rename(rs: List[TensorUsageRecord], tag: str) -> List[TensorUsageRecord]:
        return [
            TensorUsageRecord(name=f"{tag}.{r.name}", first_op=r.first_op,
                              last_op=r.last_op, size=r.size)
            for r in rs
        ]

    return rename(records_a, "a"), rename(records_b, "b")


def _double_buffered_cross_request_diags():
    records_a, records_b = _double_buffered_records()
    return check_cross_request(plan_double_buffered(records_a, records_b))


# ---------------------------------------------------------------------------
# Seeded serving schedule
# ---------------------------------------------------------------------------


def build_serving_schedule(
    seed: int = 0,
    n_requests: int = 6,
    rate_per_s: float = 200.0,
) -> StreamSchedule:
    """A double-buffered copy/compute serving schedule for ``n_requests``.

    Mirrors how a TurboTransformers-style server overlaps PCIe transfers
    with compute: one copy stream moves request ``i``'s inputs to the
    device and results back; two compute streams alternate requests so
    request ``i+1``'s kernels can run while ``i``'s output transfers.
    Event syncs order each request's copy -> compute -> copy pipeline;
    the shared embedding/weight buffers are read-only on every stream, so
    the schedule is race-free by construction.
    """
    from ..serving.workload import generate_requests

    requests = generate_requests(rate_per_s=rate_per_s, duration_s=1.0,
                                 seed=seed)[:n_requests]
    schedule = StreamSchedule(name=f"serving-seed{seed}")
    weights = ("weights",)
    for i, request in enumerate(requests):
        compute = f"compute{i % 2}"
        inp, act, out = f"req{i}.input", f"req{i}.act", f"req{i}.out"
        schedule.launch(f"h2d.req{i}", "copy", reads=(), writes=(inp,))
        schedule.record(f"h2d.done{i}", "copy")
        schedule.wait(f"h2d.done{i}", compute)
        schedule.launch(f"encoder.req{i}(len={request.seq_len})", compute,
                        reads=(inp,) + weights, writes=(act,))
        schedule.launch(f"classifier.req{i}", compute,
                        reads=(act,) + weights, writes=(out,))
        schedule.record(f"compute.done{i}", compute)
        schedule.wait(f"compute.done{i}", "copy")
        schedule.launch(f"d2h.req{i}", "copy", reads=(out,), writes=())
    return schedule


def run_schedule_checks(seed: int = 0) -> DiagnosticReport:
    report = DiagnosticReport()
    schedule = build_serving_schedule(seed=seed)
    report.extend(check_schedule(schedule))
    report.checked["schedule_ops"] = len(schedule)
    report.checked["schedule_streams"] = len(schedule.streams())
    return report


# ---------------------------------------------------------------------------
# Determinism sweep
# ---------------------------------------------------------------------------


def default_lint_root() -> Path:
    """The installed ``repro`` package directory."""
    return Path(__file__).resolve().parent.parent


def default_lint_roots() -> Tuple[Path, ...]:
    """The package directory plus the repo ``tests/`` tree when present
    (a pip-installed package has no tests checkout — lint what exists)."""
    package = default_lint_root()
    roots = [package]
    tests = package.parent.parent / "tests"
    if tests.is_dir():
        roots.append(tests)
    return tuple(roots)


def run_determinism_checks(root: Optional[Path] = None) -> DiagnosticReport:
    report = DiagnosticReport()
    roots = default_lint_roots() if root is None else (Path(root),)
    linted = 0
    for lint_root in roots:
        diags = lint_paths(lint_root)
        # Report checkout-independent relative paths (keeps the JSON
        # artifact byte-stable across CI runners).  The package root keeps
        # its historical base (``serving/server.py``); any other root is
        # prefixed with its own directory name (``tests/engine/...``).
        if lint_root.is_dir() and lint_root.name == "repro":
            base = lint_root
        else:
            base = lint_root.parent
        for d in diags:
            file = d.location.file
            if file is not None:
                try:
                    file = str(
                        Path(file).resolve().relative_to(base.resolve())
                    )
                except ValueError:
                    pass
            report.add(diag(d.code, d.message, severity=d.severity,
                            file=file, line=d.location.line))
        linted += (
            1 if lint_root.is_file() else len(list(lint_root.rglob("*.py")))
        )
    report.checked["linted_files"] = linted
    return report


# ---------------------------------------------------------------------------
# Engine-trace sweep
# ---------------------------------------------------------------------------


def run_engine_lifecycle_checks(
    families: Sequence[str] = ("engine", "lifecycle"),
    seed: int = 0,
) -> DiagnosticReport:
    """Run the light trace-sanitizer sweep and keep the selected slices.

    One recorded execution per :data:`~repro.analysis.sanitizer.
    TRACE_SCENARIOS` entry backs both families: ENG5xx diagnostics — and
    SCHED311, the race audit of the stream schedules the chunked
    continuous round loop actually emitted — belong to ``engine``;
    LIFE6xx and the MEM22x conservation codes belong to ``lifecycle``.
    """
    from .sanitizer import run_trace_checks

    diagnostics, totals = run_trace_checks(seed=seed)
    report = DiagnosticReport()
    for d in diagnostics:
        family = "engine" if d.code.startswith(("ENG", "SCHED")) \
            else "lifecycle"
        if family in families:
            report.add(d)
    report.checked.update(totals)
    return report


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_check(
    families: Optional[Sequence[str]] = None,
    seed: int = 0,
    lint_root: Optional[Path] = None,
) -> DiagnosticReport:
    """Run the selected checker families (default: all of them)."""
    selected = tuple(families) if families else FAMILIES
    unknown = set(selected) - set(FAMILIES)
    if unknown:
        raise ValueError(f"unknown checker families: {sorted(unknown)}; "
                         f"choose from {FAMILIES}")
    report = DiagnosticReport()
    graphs = None
    if "graph" in selected or "memory" in selected:
        graphs = builtin_graphs()
    if "graph" in selected:
        report.merge(run_graph_checks(graphs))
    if "memory" in selected:
        report.merge(run_memory_checks(graphs))
    if "schedule" in selected:
        report.merge(run_schedule_checks(seed=seed))
    if "determinism" in selected:
        report.merge(run_determinism_checks(lint_root))
    if "engine" in selected or "lifecycle" in selected:
        report.merge(run_engine_lifecycle_checks(selected, seed=seed))
    return report
