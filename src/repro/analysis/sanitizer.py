"""Scenario harness: real serving runs under the engine-trace sanitizer.

Two tiers of scenarios, both driven through
:class:`~repro.analysis.engine_checks.EngineTraceRecorder`:

* **Light scenarios** (``oneshot``, ``ebird``, ``cluster``,
  ``continuous``) — small seeded workloads over each serving loop, with
  faults, retries and breakers in play so the trace exercises every hook.
  These back the ``engine`` and ``lifecycle`` families of
  ``python -m repro check`` and finish in a few seconds.
* **Chaos scenarios** — the full ``repro chaos`` scenarios (``smoke``,
  ``blackout``, ``storm``, ``gen-blackout``, ``gen-storm``), baseline and
  chaos sides both recorded.  ``python -m repro check --sanitize <name>``
  runs one of these and exits non-zero on any ERROR diagnostic, which is
  what the CI ``sanitize`` job gates on.

Every scenario is deterministic given ``(name, seed)``: two runs produce
byte-identical diagnostic JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..resilience.breaker import CircuitBreaker
from ..resilience.chaos import (
    GEN_SCENARIOS,
    SCENARIOS,
    _linear_cost,
    replace_deadline,
    run_chaos,
    run_gen_chaos,
)
from ..resilience.config import ResilienceConfig
from ..resilience.faults import (
    FaultPlan,
    LatencySpike,
    ServerCrash,
    TransientFailures,
)
from ..resilience.retry import RetryPolicy
from ..serving import (
    DPBatchScheduler,
    ServingConfig,
    generate_requests,
    simulate_cluster,
    simulate_ebird_serving,
    simulate_serving,
)
from .diagnostics import Diagnostic, DiagnosticReport
from .engine_checks import EngineTraceRecorder, verify_trace
from .schedule_checks import check_emitted_schedules


@dataclass
class ScenarioOutcome:
    """What a scenario runner hands back to the verifier.

    ``retry`` is the retry policy in force (LIFE604); ``diagnostics``
    are findings the runner produced itself — e.g. the SCHED311 audit of
    the stream schedules the chunked continuous server emitted; entries
    in ``checked`` are merged into the report's coverage stats.
    """

    retry: Optional[RetryPolicy] = None
    diagnostics: List[Diagnostic] = field(default_factory=list)
    checked: Dict[str, int] = field(default_factory=dict)


#: A scenario runner executes one seeded workload (while a recorder is
#: attached) and returns a :class:`ScenarioOutcome`.
ScenarioRunner = Callable[[int], ScenarioOutcome]


def _breaker_factory(server_id: int) -> CircuitBreaker:
    return CircuitBreaker(window=10, failure_threshold=0.5,
                          cooldown_s=0.2, name=f"server{server_id}")


def _run_oneshot(seed: int) -> ScenarioOutcome:
    """One-shot serving: crash + transient failures on the single server."""
    requests = [replace_deadline(r, 2.0)
                for r in generate_requests(120.0, 1.2, seed=seed)]
    retry = RetryPolicy(max_attempts=3, base_backoff_s=0.01, multiplier=2.0,
                        max_backoff_s=0.1, jitter=0.2, budget=200, seed=seed)
    resilience = ResilienceConfig(
        faults=FaultPlan(
            seed=seed,
            crashes=(ServerCrash(start_s=0.4, end_s=0.7, server_id=0),),
            failures=(TransientFailures(start_s=0.1, end_s=0.4,
                                        failure_rate=0.6, server_id=0),),
        ),
        retry=retry,
        breaker_factory=_breaker_factory,
    )
    simulate_serving(requests, DPBatchScheduler(), _linear_cost,
                     config=ServingConfig(max_batch=8), duration_s=1.2,
                     resilience=resilience)
    return ScenarioOutcome(retry=retry)


def _run_ebird(seed: int) -> ScenarioOutcome:
    """Ebird processor sharing: a crash plus a latency spike, no retries."""
    requests = generate_requests(100.0, 1.0, seed=seed)
    simulate_ebird_serving(
        requests, _linear_cost, max_streams=3, max_batch=8,
        faults=FaultPlan(
            seed=seed,
            crashes=(ServerCrash(start_s=0.3, end_s=0.5, server_id=0),),
            spikes=(LatencySpike(start_s=0.6, end_s=0.8, multiplier=2.0,
                                 server_id=0),),
        ),
    )
    return ScenarioOutcome()


def _run_cluster(seed: int) -> ScenarioOutcome:
    """Two-server cluster: one replica crashes, work fails over."""
    requests = [replace_deadline(r, 2.0)
                for r in generate_requests(100.0, 2.0, seed=seed)]
    retry = RetryPolicy(max_attempts=4, base_backoff_s=0.02, multiplier=2.0,
                        max_backoff_s=0.3, jitter=0.2, budget=300, seed=seed)
    resilience = ResilienceConfig(
        faults=FaultPlan(
            seed=seed,
            crashes=(ServerCrash(start_s=0.5, end_s=1.0, server_id=1),),
        ),
        retry=retry,
        breaker_factory=_breaker_factory,
    )
    simulate_cluster(requests, 2, DPBatchScheduler, _linear_cost,
                     max_batch=8, duration_s=2.0, max_len=200,
                     resilience=resilience)
    return ScenarioOutcome(retry=retry)


def _run_continuous(seed: int) -> ScenarioOutcome:
    """Chunked continuous batching with prefix caching on a tight KV
    arena: spike + failures force watermark preemptions, evictions and
    restores through the ledger while shared-prefix admissions exercise
    the CoW page refcounts (MEM224), and every overlapped round's emitted
    ``StreamSchedule`` runs through the SCHED3xx race detector (findings
    re-raised as SCHED311)."""
    # Heavy imports deferred, mirroring resilience.chaos: the analysis
    # package stays importable without the model/runtime stack.
    from ..gpusim.device import RTX_2060
    from ..memory import KVCacheArena, kv_bytes_per_token
    from ..models.gpt import build_decode_step_graph, build_prefill_graph, \
        tiny_gpt
    from ..runtime import TURBO_CHARACTERISTICS, GenerationRuntime
    from ..serving import (
        ContinuousBatchingConfig,
        ContinuousBatchingServer,
        KVPreemptionPolicy,
        generate_prefix_population_requests,
        geometric_output_lengths,
    )

    config = tiny_gpt()
    runtime = GenerationRuntime(
        build_prefill_graph(config), build_decode_step_graph(config),
        TURBO_CHARACTERISTICS, RTX_2060, stride=1,
    )
    bytes_per_token = kv_bytes_per_token(
        config.num_layers, config.num_heads, config.head_size
    )
    arena = KVCacheArena(capacity_bytes=256 * bytes_per_token,
                         bytes_per_token=bytes_per_token, page_tokens=16)
    retry = RetryPolicy(max_attempts=5, base_backoff_s=0.005, multiplier=2.0,
                        max_backoff_s=0.05, jitter=0.2, budget=1000,
                        seed=seed)
    resilience = ResilienceConfig(
        faults=FaultPlan(
            seed=seed,
            spikes=(LatencySpike(start_s=0.2, end_s=0.5, multiplier=4.0,
                                 server_id=0),),
            failures=(TransientFailures(start_s=0.2, end_s=0.5,
                                        failure_rate=0.3, server_id=0),),
        ),
        retry=retry,
    )
    requests = generate_prefix_population_requests(
        150.0, 0.8, seed=seed, sharing_ratio=0.6,
        system_prompt_tokens=16, fewshot_tokens=16, suffix_lo=4,
        suffix_hi=16,
        output_sampler=lambda rng, n: geometric_output_lengths(
            rng, n, mean=8.0, hi=32),
    )
    server = ContinuousBatchingServer(
        runtime, arena,
        ContinuousBatchingConfig(preemption=KVPreemptionPolicy(2),
                                 chunk_tokens=8, prefix_cache=True),
        resilience=resilience,
    )
    server.serve(requests, duration_s=0.8)
    return ScenarioOutcome(
        retry=retry,
        diagnostics=check_emitted_schedules(server.emitted_schedules,
                                            context="continuous"),
        checked={"round_schedules": len(server.emitted_schedules),
                 "prefix_index_nodes": server.prefix_index.stats()["nodes"],
                 "prefix_index_hits": server.prefix_index.stats()["hits"]},
    )


#: The light sweep behind ``repro check --families engine,lifecycle``.
TRACE_SCENARIOS: Tuple[str, ...] = ("oneshot", "ebird", "cluster",
                                    "continuous")

_LIGHT_RUNNERS: Dict[str, ScenarioRunner] = {
    "oneshot": _run_oneshot,
    "ebird": _run_ebird,
    "cluster": _run_cluster,
    "continuous": _run_continuous,
}


def _chaos_runner(name: str) -> ScenarioRunner:
    def run(seed: int) -> ScenarioOutcome:
        run_chaos(name, seed=seed)
        return ScenarioOutcome(retry=SCENARIOS[name](seed).retry)

    return run


def _gen_chaos_runner(name: str) -> ScenarioRunner:
    def run(seed: int) -> ScenarioOutcome:
        run_gen_chaos(name, seed=seed)
        return ScenarioOutcome(retry=GEN_SCENARIOS[name](seed).retry)

    return run


def sanitize_scenarios() -> Tuple[str, ...]:
    """Every scenario name ``run_sanitized`` accepts, sorted."""
    return tuple(sorted({*_LIGHT_RUNNERS, *SCENARIOS, *GEN_SCENARIOS}))


def _runner_for(name: str) -> ScenarioRunner:
    if name in _LIGHT_RUNNERS:
        return _LIGHT_RUNNERS[name]
    if name in SCENARIOS:
        return _chaos_runner(name)
    if name in GEN_SCENARIOS:
        return _gen_chaos_runner(name)
    raise ValueError(f"unknown sanitize scenario {name!r}; "
                     f"pick from {', '.join(sanitize_scenarios())}")


def run_scenario_trace(
    name: str, seed: int = 0,
) -> Tuple[List[Diagnostic], Dict[str, int]]:
    """Run one scenario under the recorder; return (diagnostics, stats)."""
    runner = _runner_for(name)
    recorder = EngineTraceRecorder()
    with recorder:
        outcome = runner(seed)
    diagnostics = verify_trace(recorder, retry=outcome.retry, context=name)
    diagnostics.extend(outcome.diagnostics)
    stats = recorder.stats()
    for key, value in outcome.checked.items():
        stats[key] = stats.get(key, 0) + value
    return diagnostics, stats


def run_sanitized(scenario: str, seed: int = 0) -> DiagnosticReport:
    """``repro check --sanitize <scenario>``: one run, one report."""
    diagnostics, stats = run_scenario_trace(scenario, seed=seed)
    report = DiagnosticReport()
    report.extend(diagnostics)
    report.checked["sanitize_scenario"] = scenario
    for key, value in stats.items():
        report.checked[f"trace_{key}"] = value
    return report


def run_trace_checks(
    seed: int = 0,
) -> Tuple[List[Diagnostic], Dict[str, int]]:
    """The light sweep: every :data:`TRACE_SCENARIOS` entry, one recorder
    each, diagnostics pooled (``repro check`` splits them into the
    ``engine`` and ``lifecycle`` families by code prefix)."""
    diagnostics: List[Diagnostic] = []
    totals: Dict[str, int] = {}
    for name in TRACE_SCENARIOS:
        scenario_diags, stats = run_scenario_trace(name, seed=seed)
        diagnostics.extend(scenario_diags)
        for key, value in stats.items():
            totals[f"trace_{key}"] = totals.get(f"trace_{key}", 0) + value
    totals["trace_scenarios"] = len(TRACE_SCENARIOS)
    return diagnostics, totals
