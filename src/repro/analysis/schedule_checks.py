"""Schedule race detector (SCHED3xx): happens-before over gpusim streams.

Vector-clock happens-before analysis of a
:class:`~repro.gpusim.multistream.StreamSchedule`:

* ops on one stream are ordered by issue order (CUDA stream semantics);
* ``EventWait`` joins in the clock captured by the most recent prior
  ``EventRecord`` of that event (``cudaStreamWaitEvent`` semantics);
* ``DeviceSync`` is a barrier joining every stream's clock.

Two kernel launches on *different* streams that touch the same buffer,
where at least one writes and neither happens-before the other, race:
RAW (SCHED301), WAR (SCHED302) or WAW (SCHED303), classified by issue
order.  A wait on an event with no prior record never fires on real CUDA
(the wait is a no-op, silently removing the intended ordering), which is
almost always a lost-sync bug — SCHED310.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..gpusim.multistream import (
    DeviceSync,
    EventRecord,
    EventWait,
    KernelLaunch,
    StreamSchedule,
)
from .diagnostics import Diagnostic, diag

Clock = Dict[str, int]


def _join(a: Clock, b: Clock) -> Clock:
    out = dict(a)
    for stream, tick in b.items():
        if out.get(stream, 0) < tick:
            out[stream] = tick
    return out


@dataclass(frozen=True)
class _Access:
    index: int          # issue-order position of the launch
    kernel: str
    stream: str
    is_write: bool
    clock: Tuple[Tuple[str, int], ...]  # this launch's vector clock

    def happens_before(self, other: "_Access") -> bool:
        """True iff this access is ordered before ``other``.

        a -> b iff b's clock has seen a's stream at least up to a's own
        tick on that stream (standard vector-clock ordering).
        """
        own_tick = dict(self.clock).get(self.stream, 0)
        return dict(other.clock).get(self.stream, 0) >= own_tick


def _hazard(earlier: _Access, later: _Access) -> Tuple[str, str]:
    if earlier.is_write and not later.is_write:
        return "SCHED301", "read-after-write"
    if not earlier.is_write and later.is_write:
        return "SCHED302", "write-after-read"
    return "SCHED303", "write-after-write"


def check_schedule(schedule: StreamSchedule) -> List[Diagnostic]:
    """All cross-stream hazards and sync misuses in one schedule."""
    out: List[Diagnostic] = []
    clocks: Dict[str, Clock] = {}
    events: Dict[str, Clock] = {}
    accesses: Dict[str, List[_Access]] = {}
    # Work issued after a device-wide sync is ordered after everything
    # before it, even on streams first used later — `base` carries that.
    base: Clock = {}

    for index, op in enumerate(schedule.ops):
        if isinstance(op, DeviceSync):
            barrier: Clock = dict(base)
            for clock in clocks.values():
                barrier = _join(barrier, clock)
            for stream in clocks:
                clocks[stream] = dict(barrier)
            base = dict(barrier)
            continue

        stream_clock = clocks.setdefault(op.stream, dict(base))
        if isinstance(op, EventWait):
            recorded = events.get(op.event)
            if recorded is None:
                out.append(diag(
                    "SCHED310",
                    f"stream {op.stream!r} waits on event {op.event!r} which "
                    f"was never recorded — the wait is a silent no-op",
                    graph=schedule.name, node=op.event,
                ))
            else:
                clocks[op.stream] = _join(stream_clock, recorded)
            continue

        # KernelLaunch and EventRecord both advance their stream's clock.
        stream_clock = clocks[op.stream]
        stream_clock[op.stream] = stream_clock.get(op.stream, 0) + 1
        if isinstance(op, EventRecord):
            events[op.event] = dict(stream_clock)
            continue

        assert isinstance(op, KernelLaunch)
        snapshot = tuple(sorted(stream_clock.items()))
        for buffer in op.reads:
            accesses.setdefault(buffer, []).append(_Access(
                index=index, kernel=op.kernel, stream=op.stream,
                is_write=False, clock=snapshot,
            ))
        for buffer in op.writes:
            accesses.setdefault(buffer, []).append(_Access(
                index=index, kernel=op.kernel, stream=op.stream,
                is_write=True, clock=snapshot,
            ))

    reported = set()
    for buffer in sorted(accesses):
        entries = accesses[buffer]
        for i, a in enumerate(entries):
            for b in entries[i + 1:]:
                if a.stream == b.stream:
                    continue  # same-stream ops are serial by definition
                if not (a.is_write or b.is_write):
                    continue  # two reads never race
                earlier, later = (a, b) if a.index <= b.index else (b, a)
                if earlier.happens_before(later):
                    continue
                code, kind = _hazard(earlier, later)
                key = (code, buffer, earlier.kernel, later.kernel)
                if key in reported:
                    continue
                reported.add(key)
                out.append(diag(
                    code,
                    f"{kind} hazard on buffer {buffer!r}: {earlier.kernel!r} "
                    f"(stream {earlier.stream!r}) vs {later.kernel!r} "
                    f"(stream {later.stream!r}) with no ordering sync",
                    graph=schedule.name, node=buffer,
                ))
    return out


def schedule_is_race_free(schedule: StreamSchedule) -> bool:
    """Convenience for tests and serving assertions."""
    return not check_schedule(schedule)


def check_emitted_schedules(schedules: Sequence[StreamSchedule],
                            context: str = "continuous") -> List[Diagnostic]:
    """Audit the per-round schedules a serving loop actually emitted.

    The chunked continuous server logs one :class:`StreamSchedule` per
    overlapped round (prefill chunks on one stream, decode steps on the
    other, an EventRecord/EventWait join before the batch re-forms).
    Every hazard or sync misuse the per-schedule detector finds is
    re-raised as **SCHED311** — a race in a schedule the server *ran*,
    not a hypothetical program — with the underlying code preserved in
    the message.
    """
    out: List[Diagnostic] = []
    for schedule in schedules:
        for found in check_schedule(schedule):
            out.append(diag(
                "SCHED311",
                f"[{context}] round schedule {schedule.name!r}: "
                f"{found.message} (underlying {found.code})",
                graph=f"{context}:{schedule.name}",
                node=found.location.node,
            ))
    return out
