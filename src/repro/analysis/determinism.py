"""Determinism linter (DET4xx): a Python-AST pass over the source tree.

The whole reproduction rests on bit-identical replay — the chaos CI job
literally diffs JSON metrics between two runs of the same seed.  The three
bug classes that historically break that property:

* **DET401 unseeded RNG** — calls into ``random``'s module-level
  generator (global mutable state), NumPy's legacy global generator
  (``np.random.rand`` & co.), ``np.random.default_rng()`` with no seed,
  or ``random.Random()`` with no seed.
* **DET402 wall-clock reads** — ``time.time``/``perf_counter``/
  ``monotonic`` and ``datetime.now``-style calls; simulated time must
  come from the simulation's own clock.
* **DET403 unordered iteration** — directly iterating a set expression
  (literal, ``set(...)``/``frozenset(...)`` call, or ``set`` arithmetic)
  where the walk order can reach output.  Purely syntactic: iterating a
  *variable* that happens to hold a set is not flagged (no type
  inference), and ``sorted(...)`` wrapping suppresses the pattern.

Since every serving loop runs on the shared discrete-event engine, the
pass also lints **engine-API misuse** — hand-rolled event plumbing that
bypasses :class:`repro.engine.Engine` and breaks the trace sanitizer's
invariants:

* **DET405 direct heapq use** — calling ``heapq.*`` outside the engine
  re-implements the event queue; schedule through ``Engine.schedule``.
* **DET406 clock mutation** — calling ``.advance_to(...)`` or assigning
  ``._now`` moves simulated time behind the engine's back; only the
  dispatch loop may advance the clock.
* **DET407 raw TRIGGER scheduling** (warning) — scheduling
  ``EventKind.TRIGGER`` outside a function named ``ensure_trigger``
  risks duplicate or lost scheduler wakeups; route through the
  dedup-guarded helper.

Legitimate uses are suppressed with a same-line pragma::

    started = time.time()  # repro: allow(DET402) wall time for the report

``allow(*)`` suppresses every code on that line; unknown codes in a
pragma are themselves flagged (DET404) so typos cannot silently disable
a rule.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from .diagnostics import CODES, Diagnostic, diag

#: ``# repro: allow(DET402)`` or ``# repro: allow(DET401, DET403)`` or
#: ``# repro: allow(*)``; trailing prose after the closing paren is fine.
PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\(\s*([A-Za-z0-9*,\s]+?)\s*\)")

#: NumPy legacy global-generator entry points (np.random.<fn> draws from
#: hidden module state; seeding it is process-global and fragile).
_NP_GLOBAL_RNG = {
    "rand", "randn", "randint", "random", "random_sample", "ranf", "sample",
    "choice", "shuffle", "permutation", "normal", "uniform", "exponential",
    "poisson", "beta", "binomial", "bytes", "standard_normal", "seed",
}

#: Wall-clock callables, keyed by module.
_WALL_CLOCK = {
    "time": {"time", "time_ns", "perf_counter", "perf_counter_ns",
             "monotonic", "monotonic_ns", "process_time", "process_time_ns"},
    "datetime": {"now", "utcnow", "today"},
}


def parse_pragmas(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the codes allowed on that line."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = PRAGMA_RE.search(line)
        if match:
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            out[lineno] = codes
    return out


class _ImportMap:
    """Tracks what local names refer to the modules we care about."""

    def __init__(self) -> None:
        self.module_alias: Dict[str, str] = {}   # local name -> module
        self.direct: Dict[str, str] = {}         # local name -> "module.func"

    def visit_import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in ("random", "time", "datetime", "numpy", "heapq"):
                self.module_alias[alias.asname or root] = root

    def visit_import_from(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            return
        root = node.module.split(".")[0]
        if root not in ("random", "time", "datetime", "numpy", "heapq"):
            return
        for alias in node.names:
            local = alias.asname or alias.name
            if root == "datetime" and alias.name == "datetime":
                # ``from datetime import datetime`` -> datetime.now() calls
                # route through the module_alias path.
                self.module_alias[local] = "datetime"
            else:
                self.direct[local] = f"{root}.{alias.name}"


def _dotted(node: ast.AST) -> Optional[str]:
    """Render an attribute chain like ``np.random.default_rng`` to text."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically certain to evaluate to a set/frozenset."""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # set algebra only counts when one side is itself a set expr
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class _Linter(ast.NodeVisitor):
    def __init__(self, file: str) -> None:
        self.file = file
        self.imports = _ImportMap()
        self.found: List[Diagnostic] = []
        self._func_stack: List[str] = []

    def _emit(self, code: str, message: str, node: ast.AST) -> None:
        self.found.append(diag(
            code, message, file=self.file, line=getattr(node, "lineno", None),
        ))

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        self.imports.visit_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.visit_import_from(node)
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------

    def _resolve_call(self, node: ast.Call) -> Optional[str]:
        """Fully qualified name of the called function, if trackable."""
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name in self.imports.direct:
                return self.imports.direct[name]
            return None
        dotted = _dotted(node.func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        # ``np.random...`` via ``import numpy as np`` resolves through the
        # alias map; untracked roots are ignored.
        module = self.imports.module_alias.get(head)
        if module is None:
            return None
        return f"{module}.{rest}" if rest else module

    def visit_Call(self, node: ast.Call) -> None:
        qualified = self._resolve_call(node)
        if qualified:
            self._check_rng(qualified, node)
            self._check_wall_clock(qualified, node)
            self._check_heapq(qualified, node)
        self._check_list_of_set(node)
        self._check_engine_api(node)
        self.generic_visit(node)

    def _check_rng(self, qualified: str, node: ast.Call) -> None:
        has_args = bool(node.args or node.keywords)
        if qualified.startswith("random."):
            func = qualified.split(".", 1)[1]
            if func == "Random" and has_args:
                return  # random.Random(seed) is a seeded instance
            self._emit(
                "DET401",
                f"{qualified}() draws from the process-global generator; "
                f"thread a seeded np.random.Generator (or random.Random(seed)) "
                f"instead",
                node,
            )
        elif qualified.startswith("numpy.random."):
            func = qualified.split(".", 2)[2] if qualified.count(".") >= 2 else ""
            if func == "default_rng":
                if not has_args:
                    self._emit(
                        "DET401",
                        "np.random.default_rng() with no seed is entropy-"
                        "seeded; pass an explicit seed",
                        node,
                    )
            elif func in _NP_GLOBAL_RNG:
                self._emit(
                    "DET401",
                    f"np.random.{func}() uses NumPy's global generator; use "
                    f"np.random.default_rng(seed)",
                    node,
                )

    def _check_wall_clock(self, qualified: str, node: ast.Call) -> None:
        module, _, func = qualified.partition(".")
        if module not in _WALL_CLOCK:
            return
        # Strip class hops: datetime.datetime.now -> now.
        leaf = func.rsplit(".", 1)[-1] if func else ""
        if leaf in _WALL_CLOCK[module]:
            self._emit(
                "DET402",
                f"{qualified}() reads the wall clock; simulation paths must "
                f"derive time from the simulated clock",
                node,
            )

    def _check_heapq(self, qualified: str, node: ast.Call) -> None:
        if qualified.startswith("heapq."):
            func = qualified.split(".", 1)[1]
            self._emit(
                "DET405",
                f"heapq.{func}() re-implements the event queue by hand; "
                f"schedule through Engine.schedule so the trace sanitizer "
                f"sees every event",
                node,
            )

    def _check_engine_api(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "advance_to":
            self._emit(
                "DET406",
                "advance_to() mutates the virtual clock directly; only the "
                "engine's dispatch loop may move simulated time",
                node,
            )
        if "ensure_trigger" in self._func_stack:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            dotted = _dotted(arg)
            if dotted is not None \
                    and dotted.split(".")[-2:] == ["EventKind", "TRIGGER"]:
                self._emit(
                    "DET407",
                    "EventKind.TRIGGER scheduled outside ensure_trigger(); "
                    "raw TRIGGER events risk duplicate or lost scheduler "
                    "wakeups",
                    node,
                )

    def _check_list_of_set(self, node: ast.Call) -> None:
        """``list(set(...))`` / ``tuple(set(...))`` / ``"".join(set(...))``
        bake set order into a sequence."""
        if isinstance(node.func, ast.Name) and node.func.id in ("list", "tuple"):
            if node.args and _is_set_expr(node.args[0]):
                self._emit(
                    "DET403",
                    f"{node.func.id}() over a set expression fixes an "
                    f"unordered walk into a sequence; wrap it in sorted()",
                    node,
                )
        if isinstance(node.func, ast.Attribute) and node.func.attr == "join":
            if node.args and _is_set_expr(node.args[0]):
                self._emit(
                    "DET403",
                    "str.join over a set expression produces order-dependent "
                    "output; wrap it in sorted()",
                    node,
                )

    # -- assignments -------------------------------------------------------

    def _check_clock_write(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, ast.Attribute) and target.attr == "_now":
            self._emit(
                "DET406",
                "assigning ._now rewrites the virtual clock behind the "
                "engine's back; only the dispatch loop may move time",
                node,
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_clock_write(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_clock_write(node.target, node)
        self.generic_visit(node)

    # -- function-name stack (for DET407 scoping) --------------------------

    def _visit_function(self, node) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- iteration ---------------------------------------------------------

    def _check_iter(self, target: ast.expr, node: ast.AST) -> None:
        if _is_set_expr(target):
            self._emit(
                "DET403",
                "iterating a set expression walks it in hash order; wrap it "
                "in sorted() if the order can reach output",
                node,
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node)
        self.generic_visit(node)

    def visit_comprehension_generators(self, generators) -> None:
        for gen in generators:
            self._check_iter(gen.iter, gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)


def lint_source(source: str, file: str = "<string>") -> List[Diagnostic]:
    """Lint one module's source text; applies same-line pragmas."""
    pragmas = parse_pragmas(source)
    out: List[Diagnostic] = []
    for lineno, codes in sorted(pragmas.items()):
        for code in sorted(codes):
            if code != "*" and code not in CODES:
                out.append(diag(
                    "DET404",
                    f"pragma allows unknown code {code!r}",
                    file=file, line=lineno,
                ))
    try:
        tree = ast.parse(source, filename=file)
    except SyntaxError as exc:
        out.append(diag("DET400", f"failed to parse: {exc.msg}",
                        file=file, line=exc.lineno))
        return out
    linter = _Linter(file)
    linter.visit(tree)
    for found in linter.found:
        allowed = pragmas.get(found.location.line or -1, set())
        if "*" in allowed or found.code in allowed:
            continue
        out.append(found)
    return out


def lint_file(path: Union[str, Path]) -> List[Diagnostic]:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), file=str(path))


def lint_paths(root: Union[str, Path],
               exclude: Sequence[str] = ()) -> List[Diagnostic]:
    """Lint every ``*.py`` under ``root`` (sorted walk, so output order is
    stable).  ``exclude`` names path substrings to skip."""
    root = Path(root)
    files: Iterable[Path] = (
        [root] if root.is_file() else sorted(root.rglob("*.py"))
    )
    out: List[Diagnostic] = []
    for path in files:
        text = str(path)
        if any(token in text for token in exclude):
            continue
        out.extend(lint_file(path))
    return out
