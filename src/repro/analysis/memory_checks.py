"""Memory-plan verifier (MEM2xx): the allocator's safety net, generalized.

``memory/plan.py::validate_plan`` raised on the *first* violation; this
module is the same ground truth as an analysis pass — it walks the whole
plan and reports every bounds breach (MEM202), every pair of live tensors
that alias (MEM203) and any record/placement coverage gap (MEM201) as
structured diagnostics.  ``validate_plan`` now delegates here, so the
property-based allocator tests and ``python -m repro check`` exercise one
implementation.

Two extensions beyond the original validator:

* :func:`check_cross_request` — when two requests are in flight
  *concurrently* (double-buffered streams), their op-index lifetimes are
  mutually incomparable, so any byte overlap inside a shared chunk is
  aliasing (MEM204) no matter the intervals.
* :func:`fragmentation_report` — per-chunk utilization of a plan
  (peak live bytes vs. chunk size, gap bytes at the peak op), surfaced as
  MEM210 info / MEM211 warnings so footprint regressions show up in CI
  without failing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..memory.plan import AllocationPlan, Placement
from ..memory.records import TensorUsageRecord, peak_live_bytes
from .diagnostics import Diagnostic, diag


def check_plan(
    plan: AllocationPlan,
    records: Sequence[TensorUsageRecord],
    *,
    graph: Optional[str] = None,
) -> List[Diagnostic]:
    """All MEM201/202/203 violations of one request's plan.

    Message text for the core invariants matches the historical
    ``validate_plan`` wording (tests match on substrings of it).
    """
    out: List[Diagnostic] = []
    by_name = {r.name: r for r in records}
    if set(plan.placements) != set(by_name):
        missing = set(by_name) - set(plan.placements)
        extra = set(plan.placements) - set(by_name)
        out.append(diag(
            "MEM201",
            f"plan/records mismatch: missing={missing} extra={extra}",
            graph=graph,
        ))

    by_chunk: Dict[int, List[Tuple[TensorUsageRecord, Placement]]] = {}
    for name, placement in plan.placements.items():
        record = by_name.get(name)
        if record is None:
            continue  # already covered by MEM201
        if placement.chunk_id not in plan.chunk_sizes:
            out.append(diag(
                "MEM202",
                f"{name!r} placed in unknown chunk {placement.chunk_id}",
                graph=graph, node=name,
            ))
            continue
        size = plan.chunk_sizes[placement.chunk_id]
        if placement.offset < 0 or placement.offset + record.size > size:
            out.append(diag(
                "MEM202",
                f"{name!r} ({record.size} B at {placement.offset}) exceeds "
                f"chunk {placement.chunk_id} of {size} B",
                graph=graph, node=name,
            ))
        by_chunk.setdefault(placement.chunk_id, []).append((record, placement))

    for chunk_id, entries in sorted(by_chunk.items()):
        entries.sort(key=lambda e: (e[1].offset, e[0].name))
        for i, (rec_a, place_a) in enumerate(entries):
            for rec_b, place_b in entries[i + 1:]:
                if not rec_a.overlaps(rec_b):
                    continue  # disjoint lifetimes may alias
                a0, a1 = place_a.offset, place_a.offset + rec_a.size
                b0, b1 = place_b.offset, place_b.offset + rec_b.size
                if a0 < b1 and b0 < a1:
                    out.append(diag(
                        "MEM203",
                        f"live tensors {rec_a.name!r} and {rec_b.name!r} "
                        f"overlap in chunk {chunk_id}: [{a0},{a1}) vs "
                        f"[{b0},{b1})",
                        graph=graph, node=rec_a.name,
                    ))
    return out


def check_cross_request(
    plans: Mapping[str, Tuple[AllocationPlan, Sequence[TensorUsageRecord]]],
) -> List[Diagnostic]:
    """MEM204: byte overlap between *concurrent* requests' placements.

    ``plans`` maps a request label to its (plan, records); all entries are
    taken to be in flight at once over one shared chunk-id space (e.g.
    per-stream double buffering against a common device pool).  Lifetime
    intervals are per-request op indices and therefore incomparable across
    requests, so concurrent requests must occupy disjoint byte ranges in
    any chunk they share.
    """
    out: List[Diagnostic] = []
    sizes: Dict[str, Dict[str, int]] = {
        label: {r.name: r.size for r in records}
        for label, (plan, records) in plans.items()
    }
    labels = sorted(plans)
    for i, label_a in enumerate(labels):
        plan_a = plans[label_a][0]
        for label_b in labels[i + 1:]:
            plan_b = plans[label_b][0]
            for name_a, place_a in sorted(plan_a.placements.items()):
                size_a = sizes[label_a].get(name_a)
                if size_a is None:
                    continue
                for name_b, place_b in sorted(plan_b.placements.items()):
                    if place_a.chunk_id != place_b.chunk_id:
                        continue
                    size_b = sizes[label_b].get(name_b)
                    if size_b is None:
                        continue
                    a0, a1 = place_a.offset, place_a.offset + size_a
                    b0, b1 = place_b.offset, place_b.offset + size_b
                    if a0 < b1 and b0 < a1:
                        out.append(diag(
                            "MEM204",
                            f"concurrent requests {label_a!r} and {label_b!r} "
                            f"alias in chunk {place_a.chunk_id}: "
                            f"{name_a!r} [{a0},{a1}) vs {name_b!r} [{b0},{b1})",
                            node=name_a,
                        ))
    return out


@dataclass(frozen=True)
class ChunkStats:
    """Utilization of one chunk under one plan."""

    chunk_id: int
    size: int
    peak_live_bytes: int
    resident_tensors: int

    @property
    def utilization(self) -> float:
        return self.peak_live_bytes / self.size if self.size else 0.0


@dataclass(frozen=True)
class FragmentationReport:
    """Plan-wide packing quality for the chunked allocator (Fig. 6/7)."""

    chunks: Tuple[ChunkStats, ...]
    footprint_bytes: int       # sum of all chunk sizes
    peak_live_bytes: int       # lower bound any plan must pay
    plan_peak_bytes: int       # sum over chunks of their peak live bytes

    @property
    def packing_overhead(self) -> float:
        """Footprint relative to the theoretical lower bound (>= 1.0)."""
        if self.peak_live_bytes == 0:
            return 1.0
        return self.footprint_bytes / self.peak_live_bytes


def fragmentation_report(
    plan: AllocationPlan, records: Sequence[TensorUsageRecord]
) -> FragmentationReport:
    """Per-chunk peak-liveness stats for one plan."""
    by_name = {r.name: r for r in records}
    per_chunk: Dict[int, List[TensorUsageRecord]] = {
        chunk_id: [] for chunk_id in plan.chunk_sizes
    }
    for name, placement in plan.placements.items():
        record = by_name.get(name)
        if record is not None and placement.chunk_id in per_chunk:
            per_chunk[placement.chunk_id].append(record)
    chunks = tuple(
        ChunkStats(
            chunk_id=chunk_id,
            size=plan.chunk_sizes[chunk_id],
            peak_live_bytes=peak_live_bytes(residents),
            resident_tensors=len(residents),
        )
        for chunk_id, residents in sorted(per_chunk.items())
    )
    return FragmentationReport(
        chunks=chunks,
        footprint_bytes=plan.footprint_bytes,
        peak_live_bytes=peak_live_bytes(list(by_name.values())),
        plan_peak_bytes=sum(c.peak_live_bytes for c in chunks),
    )


def check_fragmentation(
    plan: AllocationPlan,
    records: Sequence[TensorUsageRecord],
    *,
    graph: Optional[str] = None,
    warn_below: float = 0.25,
) -> List[Diagnostic]:
    """MEM210 info summary plus MEM211 warnings for badly packed chunks.

    ``warn_below`` only fires for multi-tensor chunks: a dedicated
    oversize chunk (one resident sized by ``K_SCALE``) is the algorithm
    working as designed, not fragmentation.
    """
    report = fragmentation_report(plan, records)
    out: List[Diagnostic] = [diag(
        "MEM210",
        f"{len(report.chunks)} chunk(s), footprint {report.footprint_bytes} B, "
        f"peak live {report.peak_live_bytes} B, packing overhead "
        f"{report.packing_overhead:.2f}x",
        graph=graph,
    )]
    for stats in report.chunks:
        if stats.resident_tensors > 1 and stats.utilization < warn_below:
            out.append(diag(
                "MEM211",
                f"chunk {stats.chunk_id} peaks at {stats.peak_live_bytes} B "
                f"of {stats.size} B ({stats.utilization:.0%} utilized, "
                f"{stats.resident_tensors} tensors)",
                graph=graph, node=f"chunk{stats.chunk_id}",
            ))
    return out
