"""Engine-trace recorder + verifier: dynamic sanitizing of real runs.

The static checkers in this package prove properties of *artifacts*
(graphs, plans, schedules, source).  This module proves properties of
*executions*: an :class:`EngineTraceRecorder` attaches to the hook points
the engine/serving/memory/resilience layers expose and records one
deterministic event log per run — engine dispatches, request state
transitions (via :meth:`Request.resolve`), KV-arena mutations, breaker
transitions, fault-injector creation — and :func:`verify_trace` replays
that log against the invariants every scheduler on the shared engine must
uphold:

* **ENG5xx** — the clock never moves backwards (ENG501), no event is
  dispatched before the clock reached its scheduled time (ENG502), and no
  engine goes quiescent while requests attributed to it are still
  unresolved — the classic lost wakeup (ENG503).
* **LIFE6xx** — every admitted request reaches a terminal state (LIFE601)
  exactly once (LIFE602), never completes strictly inside its replica's
  crash window (LIFE603), never retries past the policy's attempt or
  budget limits (LIFE604), never completes before it arrived (LIFE605),
  and circuit breakers only take legal transitions (LIFE606).
* **MEM22x** — the KV token-conservation ledger: per-region tokens at
  preempt/release must equal the admitted base plus every recorded append
  (MEM222), restores must pair with a preceding preempt and never shrink
  the region (MEM223), and at drain no region outlives its request
  (MEM221, cross-checked against :meth:`KVCacheArena.verify`).

Recording is strictly opt-in: every hook point is an empty module-level
list in normal runs, so the zero-tolerance bench-equivalence gates see
byte-identical behaviour with the recorder detached.  New schedulers opt
in for free by construction — they run on the shared :class:`Engine`,
resolve requests through :meth:`Request.resolve`, and touch KV through
:class:`KVCacheArena`, which is exactly the surface the recorder taps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine import core as _engine_core
from ..engine import faults as _engine_faults
from ..engine.core import Engine, Event, EventKind
from ..engine.faults import EngineFaultInjector
from ..memory import kv_arena as _kv_arena
from ..memory.kv_arena import KVCacheArena
from ..resilience import breaker as _breaker
from ..resilience.breaker import BreakerState, CircuitBreaker
from ..resilience.retry import RetryPolicy
from ..serving import request as _request
from ..serving.request import Request, RequestState
from .diagnostics import Diagnostic, diag

#: The breaker state machine's legal edges (see ``resilience.breaker``):
#: closed trips open, open cools into half-open, and half-open either
#: re-opens on a failed probe or closes on a full probe set.
VALID_BREAKER_TRANSITIONS: Set[Tuple[BreakerState, BreakerState]] = {
    (BreakerState.CLOSED, BreakerState.OPEN),
    (BreakerState.OPEN, BreakerState.HALF_OPEN),
    (BreakerState.HALF_OPEN, BreakerState.OPEN),
    (BreakerState.HALF_OPEN, BreakerState.CLOSED),
}


class EngineTraceRecorder:
    """Records one deterministic event log across every hooked layer.

    Use as a context manager around a run::

        with EngineTraceRecorder() as rec:
            simulate_serving(requests, scheduler, cost_fn, resilience=res)
        diagnostics = verify_trace(rec, retry=res.retry)

    Attaching installs observers on the module-level hook lists in
    ``engine.core``, ``engine.faults``, ``serving.request``,
    ``memory.kv_arena`` and ``resilience.breaker``; detaching removes
    them.  Every engine constructed while attached also gets a dispatch
    hook (via :meth:`Engine.add_dispatch_hook`) that attributes ARRIVAL /
    RETRY payloads to that engine.  All records carry one global,
    monotonically increasing sequence number so cross-layer ordering is
    total.
    """

    def __init__(self) -> None:
        self._seq = 0
        self._recording = False
        #: Engines in creation order; the index is the engine id in records.
        self.engines: List[Engine] = []
        self.injectors: List[EngineFaultInjector] = []
        #: Arenas in first-touch order; the index is the arena id in records.
        self.arenas: List[KVCacheArena] = []
        self._arena_ids: Dict[int, int] = {}
        #: (seq, engine_idx, now_at_hook, scheduled_time, kind_value)
        self.dispatches: List[Tuple[int, int, float, float, int]] = []
        #: (seq, request_key, request, terminal_state)
        self.resolves: List[Tuple[int, int, Request, RequestState]] = []
        #: (seq, arena_idx, op, req_id, tokens)
        self.arena_events: List[Tuple[int, int, str, int, int]] = []
        #: (seq, breaker_name, now_s, from_state, to_state)
        self.breaker_events: List[
            Tuple[int, str, float, BreakerState, BreakerState]] = []
        #: request_key -> (engine_idx, request): ARRIVAL payload attribution.
        self.requests: Dict[int, Tuple[int, Request]] = {}
        #: (seq, request_key) for every RETRY dispatch carrying a request.
        self.retry_dispatches: List[Tuple[int, int]] = []

    # -- hook plumbing ----------------------------------------------------

    def _next(self) -> int:
        self._seq += 1
        return self._seq

    def _on_engine(self, engine: Engine) -> None:
        if not self._recording:
            return
        idx = len(self.engines)
        self.engines.append(engine)

        def on_dispatch(event: Event) -> None:
            if not self._recording:
                return
            self.dispatches.append((self._next(), idx, engine.now,
                                    event.time, int(event.kind)))
            payload = event.payload
            if isinstance(payload, Request):
                if event.kind is EventKind.ARRIVAL:
                    self.requests.setdefault(id(payload), (idx, payload))
                elif event.kind is EventKind.RETRY:
                    self.retry_dispatches.append((self._seq, id(payload)))

        engine.add_dispatch_hook(on_dispatch)

    def _on_injector(self, injector: EngineFaultInjector) -> None:
        if self._recording:
            self.injectors.append(injector)

    def _on_resolve(self, request: Request, state: RequestState) -> None:
        if self._recording:
            self.resolves.append((self._next(), id(request), request, state))

    def _on_arena(self, arena: KVCacheArena, op: str, req_id: int,
                  tokens: int) -> None:
        if not self._recording:
            return
        idx = self._arena_ids.get(id(arena))
        if idx is None:
            idx = len(self.arenas)
            self._arena_ids[id(arena)] = idx
            self.arenas.append(arena)
        self.arena_events.append((self._next(), idx, op, req_id, tokens))

    def _on_breaker(self, breaker: CircuitBreaker, now_s: float,
                    frm: BreakerState, to: BreakerState) -> None:
        if self._recording:
            self.breaker_events.append((self._next(), breaker.name, now_s,
                                        frm, to))

    def attach(self) -> "EngineTraceRecorder":
        if self._recording:
            raise RuntimeError("recorder is already attached")
        self._recording = True
        _engine_core._engine_hooks.append(self._on_engine)
        _engine_faults._injector_hooks.append(self._on_injector)
        _request._resolve_hooks.append(self._on_resolve)
        _kv_arena._arena_hooks.append(self._on_arena)
        _breaker._transition_hooks.append(self._on_breaker)
        return self

    def detach(self) -> None:
        if not self._recording:
            return
        self._recording = False
        for hooks, hook in (
            (_engine_core._engine_hooks, self._on_engine),
            (_engine_faults._injector_hooks, self._on_injector),
            (_request._resolve_hooks, self._on_resolve),
            (_kv_arena._arena_hooks, self._on_arena),
            (_breaker._transition_hooks, self._on_breaker),
        ):
            if hook in hooks:
                hooks.remove(hook)

    def __enter__(self) -> "EngineTraceRecorder":
        return self.attach()

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    # -- summary ----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Deterministic coverage counters for ``report.checked``."""
        return {
            "engines": len(self.engines),
            "dispatches": len(self.dispatches),
            "requests": len(self.requests),
            "resolves": len(self.resolves),
            "arena_events": len(self.arena_events),
            "breaker_transitions": len(self.breaker_events),
        }


# -- verifiers -------------------------------------------------------------


def verify_engine_trace(rec: EngineTraceRecorder,
                        context: str = "trace") -> List[Diagnostic]:
    """ENG5xx: clock monotonicity, no past-dispatch, no lost wakeup.

    One diagnostic per (engine, code): a broken clock corrupts every
    subsequent dispatch, so repeating the finding per event would bury
    the root cause.
    """
    out: List[Diagnostic] = []
    flagged: Set[Tuple[int, str]] = set()
    last_now: Dict[int, float] = {}
    for _seq, idx, now, scheduled, kind in rec.dispatches:
        prev = last_now.get(idx)
        if prev is not None and now < prev and (idx, "ENG501") not in flagged:
            flagged.add((idx, "ENG501"))
            out.append(diag(
                "ENG501",
                f"{context}: engine #{idx} clock moved backwards at a "
                f"{EventKind(kind).name} dispatch: {now} after {prev}",
                node=f"engine{idx}",
            ))
        last_now[idx] = now
        if now < scheduled and (idx, "ENG502") not in flagged:
            flagged.add((idx, "ENG502"))
            out.append(diag(
                "ENG502",
                f"{context}: engine #{idx} dispatched a "
                f"{EventKind(kind).name} scheduled for {scheduled} with the "
                f"clock still at {now} (clock never reached the event time)",
                node=f"engine{idx}",
            ))
    # Lost wakeup: the run finished (no live events anywhere on the
    # engine) while requests attributed to it are still non-terminal —
    # they can never make progress again.
    for idx, engine in enumerate(rec.engines):
        if engine.pending:
            continue
        stuck = sorted(
            req.req_id for (eng_idx, req) in rec.requests.values()
            if eng_idx == idx and not req.state.is_terminal
        )
        if stuck:
            shown = ", ".join(str(r) for r in stuck[:5])
            out.append(diag(
                "ENG503",
                f"{context}: engine #{idx} is quiescent (empty heap) with "
                f"{len(stuck)} unresolved request(s): {shown}"
                + ("…" if len(stuck) > 5 else ""),
                node=f"engine{idx}",
            ))
    return out


def verify_lifecycle(rec: EngineTraceRecorder,
                     retry: Optional[RetryPolicy] = None,
                     context: str = "trace") -> List[Diagnostic]:
    """LIFE6xx: terminal-state conservation, crash windows, retry limits."""
    out: List[Diagnostic] = []

    # LIFE602: more than one terminal resolve per request object.
    resolve_counts: Dict[int, int] = {}
    for _seq, key, _req, _state in rec.resolves:
        resolve_counts[key] = resolve_counts.get(key, 0) + 1
    seen_double: Set[int] = set()
    for _seq, key, req, _state in rec.resolves:
        if resolve_counts[key] > 1 and key not in seen_double:
            seen_double.add(key)
            out.append(diag(
                "LIFE602",
                f"{context}: request {req.req_id} resolved terminally "
                f"{resolve_counts[key]} times (final state "
                f"{req.state.value})",
                node=f"req{req.req_id}",
            ))

    # LIFE601: admitted (ARRIVAL-dispatched) requests that never resolved.
    for _key, (idx, req) in sorted(rec.requests.items(),
                                   key=lambda kv: kv[1][1].req_id):
        if not req.state.is_terminal:
            out.append(diag(
                "LIFE601",
                f"{context}: request {req.req_id} on engine #{idx} never "
                f"reached a terminal state (still {req.state.value})",
                node=f"req{req.req_id}",
            ))

    # LIFE605 + LIFE603 over completions.
    for _seq, key, req, state in rec.resolves:
        if state is not RequestState.COMPLETED or req.completion_s is None:
            continue
        if req.completion_s < req.arrival_s:
            out.append(diag(
                "LIFE605",
                f"{context}: request {req.req_id} completed at "
                f"{req.completion_s} before its arrival at {req.arrival_s}",
                node=f"req{req.req_id}",
            ))
        attributed = rec.requests.get(key)
        if attributed is None:
            continue
        engine = rec.engines[attributed[0]]
        injector = next((i for i in rec.injectors if engine.faults is i),
                        None)
        if injector is None:
            continue
        for crash in injector.plan.crashes:
            if (crash.server_id == injector.server_id
                    and crash.start_s < req.completion_s < crash.end_s):
                out.append(diag(
                    "LIFE603",
                    f"{context}: request {req.req_id} completed at "
                    f"{req.completion_s} strictly inside server "
                    f"{injector.server_id}'s crash window "
                    f"[{crash.start_s}, {crash.end_s}]",
                    node=f"req{req.req_id}",
                ))
                break

    # LIFE604: retry dispatches vs the policy's attempt/budget limits.
    if retry is not None:
        per_request: Dict[int, int] = {}
        for _seq, key in rec.retry_dispatches:
            per_request[key] = per_request.get(key, 0) + 1
        for key, count in per_request.items():
            if count > retry.max_attempts - 1:
                req = next((r for (_s, k, r, _st) in rec.resolves
                            if k == key),
                           rec.requests.get(key, (None, None))[1])
                req_id = req.req_id if req is not None else key
                out.append(diag(
                    "LIFE604",
                    f"{context}: request {req_id} retried {count} times — "
                    f"more than max_attempts {retry.max_attempts} allows",
                    node=f"req{req_id}",
                ))
        total = sum(per_request.values())
        if total > retry.budget:
            out.append(diag(
                "LIFE604",
                f"{context}: {total} retries dispatched across the trace "
                f"exceed the retry budget of {retry.budget}",
            ))

    # LIFE606: breaker transition legality.
    for _seq, name, now_s, frm, to in rec.breaker_events:
        if (frm, to) not in VALID_BREAKER_TRANSITIONS:
            out.append(diag(
                "LIFE606",
                f"{context}: breaker {name} took an illegal transition "
                f"{frm.value} -> {to.value} at t={now_s}",
                node=name,
            ))
    return out


def verify_kv_ledger(rec: EngineTraceRecorder,
                     expected_live: Sequence[int] = (),
                     context: str = "trace") -> List[Diagnostic]:
    """MEM22x: replay the arena event log as a token-conservation ledger.

    Tracks every region episode (admit/restore … append* … release/
    preempt) independently of the arena's own bookkeeping, so a mutation
    that corrupts either side shows up as a divergence; at drain the
    ledger's open episodes and the arenas' own :meth:`verify` audit must
    both be clean.
    """
    out: List[Diagnostic] = []
    live = set(expected_live)
    # (arena_idx, req_id) -> [open, base_tokens, appended_tokens,
    #                         preempted_tokens_or_None]
    ledger: Dict[Tuple[int, int], List] = {}
    for _seq, idx, op, req_id, tokens in rec.arena_events:
        key = (idx, req_id)
        episode = ledger.get(key)
        is_open = episode is not None and episode[0]
        node = f"arena{idx}/req{req_id}"
        if op == "admit":
            ledger[key] = [True, tokens, 0, None]
        elif op == "append":
            if not is_open:
                out.append(diag(
                    "MEM222",
                    f"{context}: append of {tokens} token(s) to request "
                    f"{req_id} with no live region on arena #{idx}",
                    node=node,
                ))
            else:
                episode[2] += tokens
        elif op in ("release", "preempt"):
            if not is_open:
                out.append(diag(
                    "MEM222",
                    f"{context}: {op} of request {req_id} with no live "
                    f"region on arena #{idx}",
                    node=node,
                ))
                continue
            expected = episode[1] + episode[2]
            if tokens != expected:
                out.append(diag(
                    "MEM222",
                    f"{context}: {op} of request {req_id} returned "
                    f"{tokens} token(s) but the ledger holds {expected} "
                    f"(admitted {episode[1]} + appended {episode[2]})",
                    node=node,
                ))
            episode[0] = False
            episode[3] = tokens if op == "preempt" else None
        elif op == "restore":
            if is_open:
                out.append(diag(
                    "MEM222",
                    f"{context}: restore of request {req_id} while its "
                    f"region is still live on arena #{idx}",
                    node=node,
                ))
            preempted = episode[3] if episode is not None else None
            if preempted is None:
                # Failover: a crash victim preempted on one replica's
                # arena is legitimately restored (recompute-on-resume) on
                # another's.  Claim the preempted episode cross-arena.
                for other_key in sorted(k for k in ledger
                                        if k[1] == req_id and k[0] != idx):
                    other = ledger[other_key]
                    if not other[0] and other[3] is not None:
                        preempted = other[3]
                        other[3] = None
                        break
            if preempted is None:
                out.append(diag(
                    "MEM223",
                    f"{context}: restore of request {req_id} on arena "
                    f"#{idx} has no matching preempt",
                    node=node,
                ))
            elif tokens < preempted:
                out.append(diag(
                    "MEM223",
                    f"{context}: restore of request {req_id} with {tokens} "
                    f"token(s) shrinks the {preempted} token(s) preempted",
                    node=node,
                ))
            ledger[key] = [True, tokens, 0, None]
    # Drain audit: ledger side …
    for (idx, req_id), episode in sorted(ledger.items()):
        if episode[0] and req_id not in live:
            out.append(diag(
                "MEM221",
                f"{context}: KV region for request {req_id} on arena "
                f"#{idx} still live at drain "
                f"({episode[1] + episode[2]} token(s))",
                node=f"arena{idx}/req{req_id}",
            ))
    # … cross-checked against the arenas' own plan verifier.
    for idx, arena in enumerate(rec.arenas):
        for message in arena.verify(live_req_ids=sorted(live)):
            if "leak" in message:
                code = "MEM221"
            elif "refcount" in message:
                code = "MEM224"
            else:
                code = "MEM220"
            out.append(diag(
                code,
                f"{context}: arena #{idx}: {message}",
                node=f"arena{idx}",
            ))
    return out


def verify_trace(rec: EngineTraceRecorder,
                 retry: Optional[RetryPolicy] = None,
                 expected_live: Sequence[int] = (),
                 context: str = "trace") -> List[Diagnostic]:
    """Run every trace verifier over one recorded execution."""
    out = verify_engine_trace(rec, context=context)
    out.extend(verify_lifecycle(rec, retry=retry, context=context))
    out.extend(verify_kv_ledger(rec, expected_live=expected_live,
                                context=context))
    return out
