"""Graph checkers (GRAPH1xx): shape/dtype propagation, dead code, fusion.

Shape checking works on *element counts* resolved under a canonical
binding: every builder annotates its nodes with the attrs the cost model
prices (``m/n/k`` for GEMMs, ``nelems`` for elementwise passes, ``rows`` x
``row_len`` for reductions), and those attrs must agree with the declared
:class:`~repro.graph.TensorSpec` dims of the node's inputs and outputs.
A builder that wires a tensor of the wrong shape — or prices a kernel
against dims that don't match its operands — trips GRAPH101 here long
before the mismatch would silently skew an experiment.

The fusion-legality verifier re-runs :func:`repro.graph.fuse_graph` and
asserts IO-equivalence: same external inputs/weights/outputs, every
original op accounted for exactly once, no barrier swallowed into a fused
region, and no eliminated tensor escaping its region.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graph.fusion import fuse_graph
from ..graph.graph import ComputationGraph, GraphError
from ..graph.node import OpNode, OpType
from ..graph.tensor import DimBindings, TensorKind, resolve_dim
from .diagnostics import Diagnostic, diag

#: Canonical binding used when the caller supplies none: small, distinct
#: primes so that transposed/edge-swapped dims cannot cancel out.
DEFAULT_BINDINGS: Dict[str, int] = {
    "batch": 3,
    "seq": 5,
    "past": 7,
    "beam": 2,
    "tgt_pos": 11,
    "src_len": 13,
}


def _attr_numel(value, bindings: DimBindings) -> Optional[int]:
    """Element count of a dim-like attr: an int, a symbol, or a tuple of
    either.  Returns None if the attr references an unbound symbol."""
    dims = value if isinstance(value, (tuple, list)) else (value,)
    total = 1
    for dim in dims:
        try:
            total *= resolve_dim(dim, bindings)
        except (KeyError, TypeError, ValueError):
            return None
    return total


def _tensor_numel(graph: ComputationGraph, name: str,
                  bindings: DimBindings) -> Optional[int]:
    spec = graph.tensors.get(name)
    if spec is None:
        return None
    try:
        return spec.numel(bindings)
    except (KeyError, ValueError):
        return None


def _expected_gemm(node: OpNode, bindings: DimBindings) -> Optional[Tuple[int, int, int, int]]:
    """(batch, m, n, k) element factors of a GEMM node, or None."""
    m = _attr_numel(node.attrs.get("m"), bindings)
    n = _attr_numel(node.attrs.get("n"), bindings)
    k = _attr_numel(node.attrs.get("k"), bindings)
    batch = _attr_numel(node.attrs.get("batch", 1), bindings)
    if None in (m, n, k, batch):
        return None
    return batch, m, n, k


def _check_node_shapes(
    graph: ComputationGraph, node: OpNode, bindings: DimBindings
) -> List[Diagnostic]:
    """GRAPH101 checks for one node; emits nothing for attrs it cannot
    resolve (symbol not in bindings) — missing-producer style problems are
    GRAPH105's job, not a shape mismatch."""
    out: List[Diagnostic] = []
    gname = graph.name

    def numel(tensor: str) -> Optional[int]:
        return _tensor_numel(graph, tensor, bindings)

    def mismatch(message: str) -> None:
        out.append(diag("GRAPH101", message, graph=gname, node=node.name))

    if node.op_type.is_gemm:
        dims = _expected_gemm(node, bindings)
        if dims is None:
            return out
        batch, m, n, k = dims
        roles = {0: "A", 1: "B"}
        if len(node.inputs) != 2:
            mismatch(f"GEMM expects exactly 2 inputs, has {len(node.inputs)}")
            return out
        for idx, tensor in enumerate(node.inputs):
            actual = numel(tensor)
            want = batch * m * k if idx == 0 else batch * k * n
            if actual is not None and actual != want:
                mismatch(
                    f"GEMM operand {roles[idx]} {tensor!r} has {actual} elements, "
                    f"but attrs batch*{'m*k' if idx == 0 else 'k*n'} = {want}"
                )
        actual = numel(node.outputs[0])
        if actual is not None and actual != batch * m * n:
            mismatch(
                f"GEMM output {node.outputs[0]!r} has {actual} elements, "
                f"but attrs batch*m*n = {batch * m * n}"
            )
    elif node.op_type in (OpType.SOFTMAX, OpType.LAYERNORM):
        rows = _attr_numel(node.attrs.get("rows"), bindings)
        row_len = _attr_numel(node.attrs.get("row_len"), bindings)
        if rows is None or row_len is None:
            return out
        want = rows * row_len
        for tensor in (*node.inputs, *node.outputs):
            actual = numel(tensor)
            if actual is not None and actual != want:
                mismatch(
                    f"{node.op_type.value} over {tensor!r}: {actual} elements, "
                    f"but attrs rows*row_len = {want}"
                )
    elif node.op_type in (OpType.ELEMENTWISE, OpType.TRANSPOSE, OpType.EMBEDDING):
        nelems = _attr_numel(node.attrs.get("nelems"), bindings)
        if nelems is None:
            return out
        # Inputs must match the pass size too — except EMBEDDING, whose
        # inputs (ids, table) are indexed rather than streamed, and
        # TRANSPOSE, which covers gather/slice data movement: it writes
        # nelems elements but may read them out of a larger source.
        tensors: Sequence[str] = (
            node.outputs if node.op_type is OpType.EMBEDDING
            else (*node.inputs, *node.outputs)
        )
        for tensor in tensors:
            actual = numel(tensor)
            if actual is None or actual == nelems:
                continue
            if (node.op_type is OpType.TRANSPOSE and tensor in node.inputs
                    and actual > nelems):
                continue
            mismatch(
                f"{node.op_type.value} tensor {tensor!r} has {actual} "
                f"elements, but attr nelems = {nelems}"
            )
    # FUSED nodes carry their constituents in attrs; their member shapes
    # were checked on the pre-fusion graph, and eliminated tensors no
    # longer exist here, so there is nothing to resolve.
    return out


def _check_node_dtypes(graph: ComputationGraph, node: OpNode) -> List[Diagnostic]:
    """GRAPH102: all float operands of an op must share an element width.

    EMBEDDING is the one legitimate width change (int ids in, float
    activations out), so its id input is exempt; the gathered table must
    still match the output.
    """
    out: List[Diagnostic] = []
    specs = [(name, graph.tensors[name]) for name in (*node.inputs, *node.outputs)
             if name in graph.tensors]
    if node.op_type is OpType.EMBEDDING and len(node.inputs) >= 1:
        ids = node.inputs[0]
        specs = [(name, spec) for name, spec in specs if name != ids]
    widths = {spec.dtype_bytes for _, spec in specs}
    if len(widths) > 1:
        detail = ", ".join(f"{name}={spec.dtype_bytes}B" for name, spec in specs)
        out.append(diag(
            "GRAPH102",
            f"{node.op_type.value} mixes element widths: {detail}",
            graph=graph.name, node=node.name,
        ))
    return out


def check_graph(
    graph: ComputationGraph, bindings: Optional[DimBindings] = None
) -> List[Diagnostic]:
    """Run the structural + shape/dtype + dead-code checkers on one graph."""
    bindings = dict(DEFAULT_BINDINGS, **(bindings or {}))
    out: List[Diagnostic] = []

    # -- structure first: a broken graph makes the rest meaningless --------
    try:
        graph.validate()
        producers = graph.producer_index()
        consumers = graph.consumer_indices()
        graph.topo_sort()
    except GraphError as exc:
        return [diag("GRAPH105", str(exc), graph=graph.name)]
    for node in graph.nodes:
        for tensor in (*node.inputs, *node.outputs):
            if tensor not in graph.tensors:
                out.append(diag(
                    "GRAPH105",
                    f"op references unknown tensor {tensor!r}",
                    graph=graph.name, node=node.name,
                ))

    # -- shape / dtype propagation ----------------------------------------
    for node in graph.nodes:
        out.extend(_check_node_shapes(graph, node, bindings))
        out.extend(_check_node_dtypes(graph, node))

    # -- dangling tensors (GRAPH103) ---------------------------------------
    for name, spec in graph.tensors.items():
        produced = name in producers
        consumed = bool(consumers.get(name))
        if not produced and not consumed:
            out.append(diag(
                "GRAPH103",
                f"{spec.kind.value} tensor registered but never produced or "
                f"consumed",
                graph=graph.name, node=name,
            ))

    # -- dead nodes (GRAPH104) ---------------------------------------------
    for node in graph.nodes:
        alive = any(
            consumers.get(tensor) or graph.tensors[tensor].kind is TensorKind.OUTPUT
            for tensor in node.outputs
            if tensor in graph.tensors
        )
        if not alive:
            out.append(diag(
                "GRAPH104",
                "no output is consumed or marked OUTPUT; the op's work is "
                "discarded",
                graph=graph.name, node=node.name,
            ))
    return out


def _original_io(graph: ComputationGraph) -> Dict[str, Set[str]]:
    return {
        kind.value: {n for n, s in graph.tensors.items() if s.kind is kind}
        for kind in (TensorKind.INPUT, TensorKind.WEIGHT, TensorKind.OUTPUT)
    }


def check_fusion(
    graph: ComputationGraph, fused: Optional[ComputationGraph] = None
) -> List[Diagnostic]:
    """Verify :func:`fuse_graph` output is IO-equivalent to its input.

    ``fused`` defaults to running the fusion pass here; pass an existing
    fused graph to audit a cached/deserialized one instead.
    """
    out: List[Diagnostic] = []
    if fused is None:
        try:
            fused = fuse_graph(graph)
        except GraphError as exc:
            return [diag("GRAPH105", f"fusion pass failed: {exc}",
                         graph=graph.name)]
    gname = fused.name

    # -- external IO preserved (GRAPH110) ----------------------------------
    want, got = _original_io(graph), _original_io(fused)
    for kind in ("input", "weight", "output"):
        missing = want[kind] - got[kind]
        extra = got[kind] - want[kind]
        if missing or extra:
            out.append(diag(
                "GRAPH110",
                f"external {kind} set changed: missing={sorted(missing)} "
                f"extra={sorted(extra)}",
                graph=gname,
            ))

    # -- every original op exactly once (GRAPH110/112) ---------------------
    seen: Dict[str, int] = {}
    for node in fused.nodes:
        if node.op_type is OpType.FUSED:
            for member in node.attrs.get("fused_ops", []):
                seen[member["name"]] = seen.get(member["name"], 0) + 1
                if OpType(member["op_type"]).is_gemm or \
                        OpType(member["op_type"]) is OpType.EMBEDDING:
                    out.append(diag(
                        "GRAPH112",
                        f"fusion barrier {member['name']!r} "
                        f"({member['op_type']}) was fused into {node.name!r}",
                        graph=gname, node=node.name,
                    ))
        else:
            seen[node.name] = seen.get(node.name, 0) + 1
    original = {n.name for n in graph.nodes}
    lost = original - set(seen)
    invented = set(seen) - original
    duplicated = {name for name, count in seen.items() if count > 1}
    if lost:
        out.append(diag("GRAPH110", f"ops lost by fusion: {sorted(lost)}",
                        graph=gname))
    if invented:
        out.append(diag("GRAPH110",
                        f"ops not present in the source graph: {sorted(invented)}",
                        graph=gname))
    if duplicated:
        out.append(diag("GRAPH110",
                        f"ops duplicated by fusion: {sorted(duplicated)}",
                        graph=gname))

    # -- eliminated tensors must not escape (GRAPH111) ---------------------
    fused_consumers = fused.consumer_indices()
    for node in fused.nodes:
        if node.op_type is not OpType.FUSED:
            continue
        for name in node.attrs.get("eliminated_tensors", []):
            spec = graph.tensors.get(name)
            if spec is None:
                out.append(diag(
                    "GRAPH111",
                    f"eliminated tensor {name!r} does not exist in the "
                    f"source graph",
                    graph=gname, node=node.name,
                ))
                continue
            if spec.kind is not TensorKind.INTERMEDIATE:
                out.append(diag(
                    "GRAPH111",
                    f"eliminated tensor {name!r} is {spec.kind.value}, not "
                    f"intermediate — it is visible outside the region",
                    graph=gname, node=node.name,
                ))
            if name in fused.tensors or fused_consumers.get(name):
                out.append(diag(
                    "GRAPH111",
                    f"eliminated tensor {name!r} still referenced after "
                    f"fusion",
                    graph=gname, node=node.name,
                ))
    # The fused graph must itself be structurally sound.
    try:
        fused.validate()
        fused.topo_sort()
    except GraphError as exc:
        out.append(diag("GRAPH105", f"fused graph invalid: {exc}", graph=gname))
    return out


def fusion_invariant_holds(graph: ComputationGraph) -> bool:
    """Convenience for tests: True iff fusion is provably IO-equivalent."""
    return not check_fusion(graph)
