"""Chaos harness: scripted fault scenarios with a recovery assertion.

``python -m repro chaos --scenario smoke --seed 0`` runs one scenario
twice over the *same* seeded workload — once fault-free (the baseline),
once under the scenario's :class:`FaultPlan` — and reports resilience
metrics: retry rate, deadline-miss rate, breaker transitions, and goodput
in the post-fault window relative to the baseline.  Recovery holds when
post-fault goodput is at least ``recovery_threshold`` (default 95%) of the
fault-free baseline.

Everything is deterministic given ``(scenario, seed)``: the workload comes
from a seeded generator, the fault plan is a fixed schedule whose only
randomness is hashed per attempt, and the exported
:class:`~repro.observability.MetricsRegistry` JSON is sorted — two runs
produce byte-identical files, which CI enforces by diffing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..observability import MetricsRegistry, Tracer
from ..serving import (
    ClusterMetrics,
    DPBatchScheduler,
    GenServingMetrics,
    Request,
    RoutingPolicy,
    generate_requests,
    normal_lengths,
    response_throughput,
    simulate_cluster,
)
from .breaker import CircuitBreaker
from .config import ResilienceConfig
from .faults import FaultPlan, LatencySpike, ServerCrash, TransientFailures
from .retry import RetryPolicy


def _linear_cost(seq_len: int, batch: int) -> float:
    """Synthetic profiled cost: fixed launch overhead + per-token work.

    Keeps the chaos CLI fast and dependency-free; the shape (affine in
    padded tokens) matches what the runtime cost tables look like.
    """
    return 0.002 + 0.00002 * seq_len * batch


@dataclass(frozen=True)
class ChaosScenario:
    """One scripted fault scenario over a cluster workload."""

    name: str
    rate_per_s: float
    duration_s: float
    num_servers: int
    faults: FaultPlan
    retry: RetryPolicy
    deadline_s: float
    max_len: int = 200
    max_batch: int = 16
    breaker_window: int = 10
    breaker_threshold: float = 0.5
    breaker_cooldown_s: float = 0.5
    recovery_threshold: float = 0.95
    #: Settle margin after the last fault clears before goodput is judged.
    settle_s: float = 0.5

    def post_fault_window(self) -> Tuple[float, float]:
        start = min(self.faults.last_fault_end_s() + self.settle_s,
                    self.duration_s * 0.9)
        return (start, self.duration_s)


def _smoke(seed: int) -> ChaosScenario:
    """3 servers; one crashes, one slows down, one drops requests.

    All faults clear by t=3.0 of a 6-second run, leaving half the horizon
    to demonstrate recovery.
    """
    return ChaosScenario(
        name="smoke",
        rate_per_s=150.0,
        duration_s=6.0,
        num_servers=3,
        faults=FaultPlan(
            seed=seed,
            spikes=(LatencySpike(start_s=2.0, end_s=2.8, multiplier=3.0,
                                 server_id=0),),
            failures=(TransientFailures(start_s=2.0, end_s=2.8,
                                        failure_rate=0.3, server_id=2),),
            crashes=(ServerCrash(start_s=2.0, end_s=3.0, server_id=1),),
        ),
        retry=RetryPolicy(max_attempts=4, base_backoff_s=0.02,
                          multiplier=2.0, max_backoff_s=0.5,
                          jitter=0.2, budget=400, seed=seed),
        deadline_s=2.0,
    )


def _blackout(seed: int) -> ChaosScenario:
    """Majority outage: 2 of 3 servers crash simultaneously."""
    return ChaosScenario(
        name="blackout",
        rate_per_s=120.0,
        duration_s=8.0,
        num_servers=3,
        faults=FaultPlan(
            seed=seed,
            crashes=(ServerCrash(start_s=2.0, end_s=4.0, server_id=0),
                     ServerCrash(start_s=2.0, end_s=4.0, server_id=1)),
        ),
        retry=RetryPolicy(max_attempts=5, base_backoff_s=0.05,
                          multiplier=2.0, max_backoff_s=1.0,
                          jitter=0.2, budget=800, seed=seed),
        deadline_s=3.0,
    )


def _storm(seed: int) -> ChaosScenario:
    """A permanently flaky replica: tests that the retry budget and the
    breaker, not luck, bound the amplification."""
    return ChaosScenario(
        name="storm",
        rate_per_s=100.0,
        duration_s=6.0,
        num_servers=3,
        faults=FaultPlan(
            seed=seed,
            failures=(TransientFailures(start_s=1.0, end_s=5.0,
                                        failure_rate=0.8, server_id=1),),
        ),
        retry=RetryPolicy(max_attempts=3, base_backoff_s=0.02,
                          multiplier=2.0, max_backoff_s=0.3,
                          jitter=0.2, budget=300, seed=seed),
        deadline_s=2.0,
    )


SCENARIOS = {
    "smoke": _smoke,
    "blackout": _blackout,
    "storm": _storm,
}


@dataclass(frozen=True)
class ChaosReport:
    """Everything one chaos run produced, baseline and chaos side by side."""

    scenario: ChaosScenario
    seed: int
    baseline: ClusterMetrics
    chaos: ClusterMetrics
    goodput_baseline: float
    goodput_chaos: float
    breaker_transitions: List[Tuple[float, str, str, str]]  # (t, server, frm, to)
    registry: MetricsRegistry = field(repr=False)

    @property
    def recovery_ratio(self) -> float:
        """Post-fault goodput relative to the fault-free baseline."""
        if self.goodput_baseline <= 0:
            return 1.0
        return self.goodput_chaos / self.goodput_baseline

    @property
    def recovered(self) -> bool:
        return self.recovery_ratio >= self.scenario.recovery_threshold

    @property
    def retry_rate(self) -> float:
        stats = self.chaos.serving.resilience
        return stats.retries / max(1, self.chaos.serving.offered)

    @property
    def deadline_miss_rate(self) -> float:
        stats = self.chaos.serving.resilience
        return stats.timed_out / max(1, self.chaos.serving.offered)


def _workload(scenario: ChaosScenario, seed: int) -> List[Request]:
    """Fresh request objects (same values every call) with deadlines."""

    def lengths(rng, n):
        return normal_lengths(rng, n, lo=5, hi=scenario.max_len)

    requests = generate_requests(scenario.rate_per_s, scenario.duration_s,
                                 seed=seed, length_sampler=lengths)
    return [replace_deadline(r, scenario.deadline_s) for r in requests]


def replace_deadline(request: Request, deadline_s: float) -> Request:
    """Copy of a pristine request with a deadline attached."""
    return Request(
        req_id=request.req_id,
        seq_len=request.seq_len,
        arrival_s=request.arrival_s,
        payload=request.payload,
        priority=request.priority,
        deadline_s=deadline_s,
    )


def run_chaos(
    scenario_name: str = "smoke",
    seed: int = 0,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    policy: RoutingPolicy = RoutingPolicy.LEAST_WORK,
) -> ChaosReport:
    """Run one scenario's baseline + chaos pair and assemble the report."""
    if scenario_name not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario_name!r}; pick from {sorted(SCENARIOS)}"
        )
    scenario = SCENARIOS[scenario_name](seed)
    registry = metrics if metrics is not None else MetricsRegistry()

    # -- baseline: identical workload, no faults, no resilience machinery ---
    baseline_requests = _workload(scenario, seed)
    baseline = simulate_cluster(
        baseline_requests, scenario.num_servers, DPBatchScheduler,
        _linear_cost, policy=policy, max_batch=scenario.max_batch,
        duration_s=scenario.duration_s, max_len=scenario.max_len,
    )

    # -- chaos: same workload under the fault plan --------------------------
    breakers: List[CircuitBreaker] = []

    def breaker_factory(server_id: int) -> CircuitBreaker:
        breaker = CircuitBreaker(
            window=scenario.breaker_window,
            failure_threshold=scenario.breaker_threshold,
            cooldown_s=scenario.breaker_cooldown_s,
            name=f"server{server_id}",
            metrics=registry,
        )
        breakers.append(breaker)
        return breaker

    config = ResilienceConfig(
        faults=scenario.faults,
        retry=scenario.retry,
        breaker_factory=breaker_factory,
    )
    chaos_requests = _workload(scenario, seed)
    chaos = simulate_cluster(
        chaos_requests, scenario.num_servers, DPBatchScheduler,
        _linear_cost, policy=policy, max_batch=scenario.max_batch,
        duration_s=scenario.duration_s, max_len=scenario.max_len,
        resilience=config, metrics=registry,
    )

    # -- resilience metrics --------------------------------------------------
    window = scenario.post_fault_window()
    goodput_baseline = response_throughput(baseline_requests, *window)
    goodput_chaos = response_throughput(chaos_requests, *window)
    transitions = sorted(
        (t, b.name, frm.value, to.value)
        for b in breakers
        for (t, frm, to) in b.transitions
    )
    stats = chaos.serving.resilience
    registry.gauge("chaos_goodput_baseline",
                   scenario=scenario.name).set(goodput_baseline)
    registry.gauge("chaos_goodput_post_fault",
                   scenario=scenario.name).set(goodput_chaos)
    registry.gauge("chaos_recovery_ratio", scenario=scenario.name).set(
        goodput_chaos / goodput_baseline if goodput_baseline > 0 else 1.0
    )
    registry.counter("chaos_retries_total",
                     scenario=scenario.name).inc(stats.retries)
    registry.counter("chaos_timed_out_total",
                     scenario=scenario.name).inc(stats.timed_out)
    registry.counter("chaos_failed_total",
                     scenario=scenario.name).inc(stats.failed)
    registry.gauge("chaos_deadline_miss_rate", scenario=scenario.name).set(
        stats.timed_out / max(1, chaos.serving.offered)
    )
    if tracer is not None and tracer.enabled:
        for (t, server, frm, to) in transitions:
            tracer.instant("breaker_transition", t, tid="breakers",
                           cat="resilience", server=server,
                           from_state=frm, to_state=to)

    return ChaosReport(
        scenario=scenario,
        seed=seed,
        baseline=baseline,
        chaos=chaos,
        goodput_baseline=goodput_baseline,
        goodput_chaos=goodput_chaos,
        breaker_transitions=transitions,
        registry=registry,
    )


# ---------------------------------------------------------------------------
# Generation chaos: KV-loss failover and preemption under memory pressure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GenChaosScenario:
    """One scripted fault scenario over a *generation* workload.

    ``num_replicas == 1`` runs a single
    :class:`~repro.serving.ContinuousBatchingServer` (watermark preemption
    exercised when ``max_victims_per_event`` is set); ``num_replicas > 1``
    runs :func:`~repro.serving.simulate_generation_cluster` (crash
    failover with KV loss and recompute-on-resume).
    """

    name: str
    rate_per_s: float
    duration_s: float
    num_replicas: int
    faults: FaultPlan
    retry: RetryPolicy
    capacity_tokens: int = 4096
    page_tokens: int = 16
    prompt_lo: int = 4
    prompt_hi: int = 32
    mean_new_tokens: float = 8.0
    max_new_tokens: int = 32
    deadline_s: Optional[float] = None
    #: Enables KV-pressure preemption on the single-replica loop.
    max_victims_per_event: Optional[int] = None
    breaker_window: int = 10
    breaker_threshold: float = 0.5
    breaker_cooldown_s: float = 0.2
    recovery_threshold: float = 0.9
    settle_s: float = 0.2

    def post_fault_window(self) -> Tuple[float, float]:
        start = min(self.faults.last_fault_end_s() + self.settle_s,
                    self.duration_s * 0.9)
        return (start, self.duration_s)


def _gen_blackout(seed: int) -> GenChaosScenario:
    """2 continuous-batching replicas; one crashes mid-run.

    In-flight requests on the dead replica lose their KV regions, re-route
    to the survivor through the retry path, and pay an honest
    recompute-on-resume prefill (``tokens_recomputed``).
    """
    return GenChaosScenario(
        name="gen-blackout",
        rate_per_s=600.0,
        duration_s=2.0,
        num_replicas=2,
        faults=FaultPlan(
            seed=seed,
            crashes=(ServerCrash(start_s=0.8, end_s=1.2, server_id=0),),
        ),
        retry=RetryPolicy(max_attempts=5, base_backoff_s=0.005,
                          multiplier=2.0, max_backoff_s=0.1,
                          jitter=0.2, budget=4000, seed=seed),
        capacity_tokens=8192,
    )


def _gen_storm(seed: int) -> GenChaosScenario:
    """One replica, a modest KV arena, a latency spike + failure window.

    The spike slows decode so live requests hold their KV regions longer
    and the high watermark starts denying the queue head — the preemption
    policy fires (victims evicted, restored, recompute charged) — while
    the failure window tests that dropped prefill attempts re-enter
    within the retry budget.  Fault-free the arena never saturates, so
    every preemption is fault-driven.
    """
    return GenChaosScenario(
        name="gen-storm",
        rate_per_s=250.0,
        duration_s=2.5,
        num_replicas=1,
        faults=FaultPlan(
            seed=seed,
            spikes=(LatencySpike(start_s=0.6, end_s=1.0, multiplier=4.0,
                                 server_id=0),),
            failures=(TransientFailures(start_s=0.6, end_s=1.0,
                                        failure_rate=0.3, server_id=0),),
        ),
        retry=RetryPolicy(max_attempts=6, base_backoff_s=0.005,
                          multiplier=2.0, max_backoff_s=0.1,
                          jitter=0.2, budget=4000, seed=seed),
        capacity_tokens=512,
        max_victims_per_event=2,
    )


GEN_SCENARIOS = {
    "gen-blackout": _gen_blackout,
    "gen-storm": _gen_storm,
}


@dataclass(frozen=True)
class GenChaosReport:
    """One generation chaos run, baseline and chaos side by side.

    ``kv_leaks`` is the end-of-run arena audit across every replica: a
    non-empty list means some KV region outlived its request through a
    crash or preemption (the MEM221 invariant, violated)."""

    scenario: GenChaosScenario
    seed: int
    baseline: "GenServingMetrics"
    chaos: "GenServingMetrics"
    goodput_baseline: float
    goodput_chaos: float
    kv_leaks: List[str]
    registry: MetricsRegistry = field(repr=False)

    @property
    def recovery_ratio(self) -> float:
        if self.goodput_baseline <= 0:
            return 1.0
        return self.goodput_chaos / self.goodput_baseline

    @property
    def recovered(self) -> bool:
        return self.recovery_ratio >= self.scenario.recovery_threshold

    @property
    def leak_free(self) -> bool:
        return not self.kv_leaks


def _gen_workload(scenario: GenChaosScenario, seed: int):
    """Fresh GenRequest objects (same values every call), with deadlines."""
    from ..serving import (
        GenRequest,
        generate_generation_requests,
        geometric_output_lengths,
        uniform_lengths,
    )

    def prompts(rng, n):
        return uniform_lengths(rng, n, lo=scenario.prompt_lo,
                               hi=scenario.prompt_hi)

    def outputs(rng, n):
        return geometric_output_lengths(rng, n,
                                        mean=scenario.mean_new_tokens,
                                        hi=scenario.max_new_tokens)

    requests = generate_generation_requests(
        scenario.rate_per_s, scenario.duration_s, seed=seed,
        prompt_sampler=prompts, output_sampler=outputs,
    )
    if scenario.deadline_s is None:
        return requests
    return [
        GenRequest(req_id=r.req_id, seq_len=r.seq_len,
                   arrival_s=r.arrival_s, deadline_s=scenario.deadline_s,
                   max_new_tokens=r.max_new_tokens)
        for r in requests
    ]


def run_gen_chaos(
    scenario_name: str = "gen-blackout",
    seed: int = 0,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> GenChaosReport:
    """Run one generation scenario's baseline + chaos pair."""
    if scenario_name not in GEN_SCENARIOS:
        raise ValueError(
            f"unknown gen scenario {scenario_name!r}; "
            f"pick from {sorted(GEN_SCENARIOS)}"
        )
    scenario = GEN_SCENARIOS[scenario_name](seed)
    registry = metrics if metrics is not None else MetricsRegistry()

    # Heavy imports deferred: the chaos module stays importable without
    # dragging the model/runtime stack in at package-import time.
    from ..gpusim.device import RTX_2060
    from ..memory import KVCacheArena, kv_bytes_per_token
    from ..models.gpt import (
        build_decode_step_graph,
        build_prefill_graph,
        tiny_gpt,
    )
    from ..runtime import TURBO_CHARACTERISTICS, GenerationRuntime
    from ..serving import (
        ContinuousBatchingConfig,
        ContinuousBatchingServer,
        KVPreemptionPolicy,
        simulate_generation_cluster,
    )

    config = tiny_gpt()
    runtime = GenerationRuntime(
        build_prefill_graph(config), build_decode_step_graph(config),
        TURBO_CHARACTERISTICS, RTX_2060, stride=1,
    )
    bytes_per_token = kv_bytes_per_token(
        config.num_layers, config.num_heads, config.head_size
    )

    def arena_factory(_replica_id: int, reg=None) -> KVCacheArena:
        return KVCacheArena(
            capacity_bytes=scenario.capacity_tokens * bytes_per_token,
            bytes_per_token=bytes_per_token,
            page_tokens=scenario.page_tokens,
            metrics=reg,
        )

    def breaker_factory(server_id: int) -> CircuitBreaker:
        return CircuitBreaker(
            window=scenario.breaker_window,
            failure_threshold=scenario.breaker_threshold,
            cooldown_s=scenario.breaker_cooldown_s,
            name=f"replica{server_id}",
            metrics=registry,
        )

    preemption = (KVPreemptionPolicy(scenario.max_victims_per_event)
                  if scenario.max_victims_per_event is not None else None)
    server_config = ContinuousBatchingConfig(preemption=preemption)
    chaos_config = ResilienceConfig(
        faults=scenario.faults,
        retry=scenario.retry,
        breaker_factory=(breaker_factory if scenario.num_replicas > 1
                         else None),
    )

    def run(requests, resilience, reg):
        """One full run; returns (metrics, kv_leaks)."""
        if scenario.num_replicas == 1:
            arena = arena_factory(0, reg=reg)
            server = ContinuousBatchingServer(
                runtime, arena, server_config, tracer=tracer, metrics=reg,
                resilience=resilience,
            )
            result = server.serve(requests,
                                  duration_s=scenario.duration_s)
            return result, list(arena.verify(live_req_ids=[]))
        cluster = simulate_generation_cluster(
            requests, scenario.num_replicas, runtime,
            lambda i: arena_factory(i, reg=reg),
            duration_s=scenario.duration_s, resilience=resilience,
            tracer=tracer, metrics=reg,
        )
        return cluster.serving, list(cluster.kv_leaks)

    baseline_requests = _gen_workload(scenario, seed)
    baseline, _ = run(baseline_requests, None, None)
    chaos_requests = _gen_workload(scenario, seed)
    chaos, kv_leaks = run(chaos_requests, chaos_config, registry)

    window = scenario.post_fault_window()
    goodput_baseline = response_throughput(baseline_requests, *window)
    goodput_chaos = response_throughput(chaos_requests, *window)
    registry.gauge("chaos_goodput_baseline",
                   scenario=scenario.name).set(goodput_baseline)
    registry.gauge("chaos_goodput_post_fault",
                   scenario=scenario.name).set(goodput_chaos)
    registry.gauge("chaos_recovery_ratio", scenario=scenario.name).set(
        goodput_chaos / goodput_baseline if goodput_baseline > 0 else 1.0
    )
    registry.counter("chaos_preemptions_total",
                     scenario=scenario.name).inc(chaos.preemptions)
    registry.counter("chaos_tokens_recomputed_total",
                     scenario=scenario.name).inc(chaos.tokens_recomputed)
    registry.counter("chaos_retries_total",
                     scenario=scenario.name).inc(chaos.retries)
    registry.counter("chaos_attempts_failed_total",
                     scenario=scenario.name).inc(chaos.attempts_failed)
    registry.gauge("chaos_kv_leaks",
                   scenario=scenario.name).set(len(kv_leaks))

    return GenChaosReport(
        scenario=scenario,
        seed=seed,
        baseline=baseline,
        chaos=chaos,
        goodput_baseline=goodput_baseline,
        goodput_chaos=goodput_chaos,
        kv_leaks=kv_leaks,
        registry=registry,
    )


def format_gen_report(report: GenChaosReport) -> str:
    """Human-readable summary of one generation chaos run."""
    s = report.scenario
    c = report.chaos
    window = s.post_fault_window()
    ttft = (f"{c.ttft.avg_ms:.2f} ms" if c.ttft.count else "—")
    tpot = (f"{c.tpot_ms_avg:.3f} ms"
            if c.tpot_ms_avg != float("inf") else "—")
    lines = [
        f"gen chaos scenario '{s.name}' (seed {report.seed}): "
        f"{c.offered} requests @ {s.rate_per_s:.0f} req/s over "
        f"{s.duration_s:.1f}s on {s.num_replicas} replica(s)",
        f"faults:    {len(s.faults.crashes)} crash(es), "
        f"{len(s.faults.spikes)} latency spike(s), "
        f"{len(s.faults.failures)} failure window(s); all clear by "
        f"t={s.faults.last_fault_end_s():.1f}s",
        f"outcome:   {c.completed} completed, {c.retries} retries, "
        f"{c.attempts_failed} attempts failed, "
        f"ttft {ttft}, tpot {tpot}",
        f"kv:        {c.preemptions} preemption(s), "
        f"{c.tokens_recomputed} tokens recomputed, "
        f"{c.kv_denials} denial(s); leak audit: "
        + (f"{len(report.kv_leaks)} LEAKED REGION(S)" if report.kv_leaks
           else "clean"),
        f"goodput:   post-fault window [{window[0]:.1f}s, {window[1]:.1f}s]: "
        f"{report.goodput_chaos:.1f} resp/s vs baseline "
        f"{report.goodput_baseline:.1f} resp/s "
        f"({report.recovery_ratio:.1%} of baseline)",
        f"recovery:  "
        f"{'OK' if report.recovered and report.leak_free else 'FAILED'} "
        f"(threshold {s.recovery_threshold:.0%}, leak-free required)",
    ]
    return "\n".join(lines)


def format_report(report: ChaosReport) -> str:
    """Human-readable multi-line summary (what the CLI prints)."""
    s = report.scenario
    stats = report.chaos.serving.resilience
    window = s.post_fault_window()
    lines = [
        f"chaos scenario '{s.name}' (seed {report.seed}): "
        f"{report.chaos.serving.offered} requests @ {s.rate_per_s:.0f} req/s "
        f"over {s.duration_s:.0f}s on {s.num_servers} servers",
        f"faults:    {len(s.faults.crashes)} crash(es), "
        f"{len(s.faults.spikes)} latency spike(s), "
        f"{len(s.faults.failures)} failure window(s); all clear by "
        f"t={s.faults.last_fault_end_s():.1f}s",
        f"outcome:   {report.chaos.serving.completed} completed, "
        f"{stats.retries} retries, {stats.timed_out} timed out, "
        f"{stats.failed} failed, {stats.shed} shed",
        f"breakers:  {len(report.breaker_transitions)} transition(s): "
        + (", ".join(f"{server}@{t:.2f}s {frm}->{to}"
                     for (t, server, frm, to) in report.breaker_transitions[:8])
           or "none"),
        f"goodput:   post-fault window [{window[0]:.1f}s, {window[1]:.1f}s]: "
        f"{report.goodput_chaos:.1f} resp/s vs baseline "
        f"{report.goodput_baseline:.1f} resp/s "
        f"({report.recovery_ratio:.1%} of baseline)",
        f"recovery:  {'OK' if report.recovered else 'FAILED'} "
        f"(threshold {s.recovery_threshold:.0%})",
    ]
    return "\n".join(lines)
