"""Per-replica circuit breaker (closed → open → half-open → closed).

The breaker watches a sliding window of attempt outcomes on one server.
When the windowed failure rate crosses ``failure_threshold`` (with at
least ``min_samples`` observations) it *opens*: the router stops sending
work there.  After ``cooldown_s`` it becomes *half-open* and admits up to
``half_open_probes`` probe requests; one probe failure re-opens it, a full
set of probe successes closes it again.

Everything is driven by the caller's (virtual) clock, so breaker behaviour
is deterministic and replayable.  Transitions are recorded on the breaker
(``transitions``) and, when a :class:`~repro.observability.MetricsRegistry`
is attached, published as counters plus a ``breaker_state`` gauge series
(0 = closed, 1 = half-open, 2 = open).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Observers notified on every breaker transition, as
#: ``hook(breaker, now_s, frm, to)``.  The engine-trace sanitizer checks
#: transition legality through this; empty — a no-op — in normal runs.
_transition_hooks: List[
    Callable[["CircuitBreaker", float, BreakerState, BreakerState], None]
] = []


#: Gauge encoding of breaker states (for exported time series).
STATE_CODE = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


class CircuitBreaker:
    """Sliding-failure-rate breaker for one server/replica."""

    def __init__(
        self,
        window: int = 20,
        failure_threshold: float = 0.5,
        min_samples: int = 5,
        cooldown_s: float = 1.0,
        half_open_probes: int = 3,
        name: str = "server0",
        metrics=None,  # Optional[repro.observability.MetricsRegistry]
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if min_samples < 1 or min_samples > window:
            raise ValueError(
                f"min_samples must be in [1, window], got {min_samples}"
            )
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be positive, got {cooldown_s}")
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self.name = name
        self.metrics = metrics

        self._state = BreakerState.CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=window)  # True = success
        self._opened_at = 0.0
        self._probes_allowed = 0
        self._probes_inflight = 0
        self._probe_successes = 0
        #: (time, from_state, to_state) of every transition, in order.
        self.transitions: List[Tuple[float, BreakerState, BreakerState]] = []

    # -- state machine ---------------------------------------------------------

    def _transition(self, to: BreakerState, now_s: float) -> None:
        frm = self._state
        if frm is to:
            return
        self._state = to
        self.transitions.append((now_s, frm, to))
        if _transition_hooks:
            for hook in list(_transition_hooks):
                hook(self, now_s, frm, to)
        if to is BreakerState.OPEN:
            self._opened_at = now_s
        elif to is BreakerState.HALF_OPEN:
            self._probes_allowed = self.half_open_probes
            self._probes_inflight = 0
            self._probe_successes = 0
        elif to is BreakerState.CLOSED:
            self._outcomes.clear()
        if self.metrics is not None:
            self.metrics.counter(
                "breaker_transitions_total", server=self.name, to=to.value
            ).inc()
            self.metrics.gauge("breaker_state", server=self.name).set(
                STATE_CODE[to], t=now_s
            )

    def state(self, now_s: float) -> BreakerState:
        """Current state, applying the open → half-open cooldown."""
        if self._state is BreakerState.OPEN and \
                now_s >= self._opened_at + self.cooldown_s:
            self._transition(BreakerState.HALF_OPEN, self._opened_at + self.cooldown_s)
        return self._state

    def probe_available(self, now_s: float) -> bool:
        """Pure query: would :meth:`allow` admit work right now?

        Consumes nothing — safe to call once per candidate per routing
        decision (health scans, degradation checks).  Call :meth:`allow`
        only at the moment work is actually committed to this replica.
        """
        state = self.state(now_s)
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            return False
        return self._probes_allowed > 0

    def allow(self, now_s: float) -> bool:
        """Commit (more) work to this replica right now?

        Half-open admits a limited number of probes and **reserves the
        probe slot on admission**: a True return in half-open decrements
        ``_probes_allowed`` immediately, so N concurrent callers cannot
        all launch probes and exceed ``half_open_probes``.  The outcome
        recorded later settles the reservation.
        """
        state = self.state(now_s)
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            return False
        if self._probes_allowed <= 0:
            return False
        self._probes_allowed -= 1
        self._probes_inflight += 1
        return True

    def record(self, success: bool, now_s: float) -> None:
        """Feed one attempt outcome observed at ``now_s``."""
        state = self.state(now_s)
        if state is BreakerState.HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            if not success:
                self._transition(BreakerState.OPEN, now_s)
                return
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_probes:
                self._transition(BreakerState.CLOSED, now_s)
            return
        self._outcomes.append(success)
        if state is BreakerState.CLOSED and \
                len(self._outcomes) >= self.min_samples:
            failures = sum(1 for ok in self._outcomes if not ok)
            if failures / len(self._outcomes) >= self.failure_threshold:
                self._transition(BreakerState.OPEN, now_s)

    # -- reporting -------------------------------------------------------------

    @property
    def failure_rate(self) -> float:
        """Windowed failure rate (0.0 with an empty window)."""
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)
