"""Retry with exponential backoff, seeded jitter and a run-wide budget.

Two layers:

* :class:`RetryPolicy` — immutable configuration: how many attempts a
  request gets, how backoff grows, how much deterministic jitter decorates
  it, and the *retry budget* (total re-enqueues allowed across the run);
* :class:`RetryState` — one run's mutable consumption of that policy;
  simulators create one per run so policies stay shareable.

The budget is what bounds retry storms: a permanently failing replica can
inflate total executed work by at most ``budget`` extra attempts, no
matter how many requests keep failing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .faults import unit_hash

from ..serving.request import Request


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full determinism.

    ``max_attempts`` counts executions including the first (so 3 means at
    most 2 retries per request).  ``budget`` caps re-enqueues across the
    whole run (``None`` = unbounded).  Jitter is a multiplicative factor in
    ``[1, 1 + jitter)`` hashed from ``(seed, req_id, attempt)`` — the same
    request retries at the same instant in every replay.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.1
    budget: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_s <= 0:
            raise ValueError(
                f"base_backoff_s must be positive, got {self.base_backoff_s}"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError("max_backoff_s must be >= base_backoff_s")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.budget is not None and self.budget < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget}")

    def backoff_s(self, attempt: int, req_id: int) -> float:
        """Delay before executing ``attempt`` (1 = first retry) of a request."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = min(
            self.base_backoff_s * self.multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        return raw * (1.0 + self.jitter * unit_hash(self.seed, req_id, attempt))


class RetryState:
    """One run's retry bookkeeping against a :class:`RetryPolicy`."""

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        self.retries_used = 0

    def next_retry_at(self, request: Request, now_s: float) -> Optional[float]:
        """Re-enqueue time for a failed request, or None (give up).

        Deadline-aware: a retry whose backoff lands past the request's
        deadline could never complete in time, so it is refused *before*
        any budget is consumed.  Consumes one unit of budget when a retry
        is granted.  Does *not* bump ``request.attempt`` — the caller owns
        request mutation.
        """
        next_attempt = request.attempt + 1
        if next_attempt >= self.policy.max_attempts:
            return None
        retry_at = now_s + self.policy.backoff_s(next_attempt, request.req_id)
        if request.deadline_s is not None and \
                retry_at > request.arrival_s + request.deadline_s:
            return None
        if self.policy.budget is not None and \
                self.retries_used >= self.policy.budget:
            return None
        self.retries_used += 1
        return retry_at
