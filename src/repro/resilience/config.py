"""The bundle a simulator needs to run resiliently.

:class:`ResilienceConfig` groups the four independent mechanisms — fault
plan, retry policy, circuit breakers, degradation ladder — plus admission
knobs (queue capacity).  Every field has a disabled default, and
``simulate_serving`` / ``simulate_cluster`` treat ``resilience=None`` and
"config whose fault plan is empty and everything else is off" identically:
both produce byte-identical metrics to the pre-resilience code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .breaker import CircuitBreaker
from .degradation import DegradationController
from .faults import FaultPlan
from .retry import RetryPolicy


@dataclass
class ResilienceConfig:
    """Everything the serving stack consults when faults are in play.

    ``breaker_factory`` builds one :class:`CircuitBreaker` per server (the
    argument is the server id); ``None`` disables breakers.  The built
    breakers are exposed on the result side via their ``transitions``.
    """

    faults: FaultPlan = field(default_factory=FaultPlan)
    retry: Optional[RetryPolicy] = None
    breaker_factory: Optional[Callable[[int], CircuitBreaker]] = None
    degradation: Optional[DegradationController] = None
    queue_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.queue_capacity is not None and self.queue_capacity <= 0:
            raise ValueError(
                f"queue_capacity must be positive, got {self.queue_capacity}"
            )
