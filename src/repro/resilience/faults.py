"""Deterministic, seeded fault injection (the chaos half of resilience).

A :class:`FaultPlan` is a *schedule* of adverse conditions, not a random
process: every fault is a time window, and the only randomness — whether a
given request attempt hits a transient failure — is derived by hashing
``(seed, req_id, attempt, server_id)``, so a plan replayed against the
same workload produces bit-identical outcomes regardless of evaluation
order.  An empty plan answers every query with the identity (multiplier
1.0, no crash, no failure) and is safe to thread through hot paths.

Fault taxonomy
--------------
:class:`LatencySpike`      server executes batches ``multiplier`` x slower
                           during the window (degraded clocks, thermal
                           throttling, a noisy neighbour).
:class:`KernelStall`       the same, one level down: individual simulated
                           kernels on a :class:`repro.gpusim.Stream` run
                           slower (hooked via ``Stream.stall_fn``).
:class:`TransientFailures` each request attempt finishing in the window
                           fails independently with ``failure_rate``
                           (ECC error, OOM, RPC reset).
:class:`ServerCrash`       the server is down for the whole window: queued
                           and in-flight work fails fast, new work must be
                           routed elsewhere, the server recovers at
                           ``end_s``.

Migration note (engine-level injection)
---------------------------------------
A :class:`FaultPlan` used to be threaded through each simulator's private
loop by hand (``simulate_serving`` multiplied batch costs inline,
``simulate_cluster`` projected crash windows itself, the generation
servers saw no faults at all).  Plans are now *bound* to a server through
:class:`repro.engine.EngineFaultInjector`: installing the injector on an
:class:`~repro.engine.Engine` makes every ``advance()`` busy window
stretch under active spikes/stalls automatically, and crash windows and
transient-failure verdicts are queried through the same object at
dispatch points.  This module remains the pure *schedule*; the injector
is the single place schedules become engine effects, so every
engine-hosted server (one-shot, continuous batching, Ebird, cluster)
experiences faults through one code path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional, Tuple


def _check_window(start_s: float, end_s: float) -> None:
    if start_s < 0 or end_s <= start_s:
        raise ValueError(f"bad fault window [{start_s}, {end_s})")


@dataclass(frozen=True)
class LatencySpike:
    """Batch execution on ``server_id`` runs ``multiplier`` x slower
    during ``[start_s, end_s)``; ``server_id=None`` hits every server."""

    start_s: float
    end_s: float
    multiplier: float
    server_id: Optional[int] = None

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def active(self, server_id: int, t: float) -> bool:
        return (self.server_id is None or self.server_id == server_id) and \
            self.start_s <= t < self.end_s


@dataclass(frozen=True)
class KernelStall:
    """Kernels whose name contains ``name_contains`` run ``multiplier`` x
    slower while the stream clock is inside ``[start_s, end_s)``."""

    start_s: float
    end_s: float
    multiplier: float
    name_contains: str = ""

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def active(self, name: str, t: float) -> bool:
        return self.name_contains in name and self.start_s <= t < self.end_s


@dataclass(frozen=True)
class TransientFailures:
    """Request attempts finishing on ``server_id`` inside the window fail
    with probability ``failure_rate`` (seeded per attempt, not iid draws)."""

    start_s: float
    end_s: float
    failure_rate: float
    server_id: Optional[int] = None

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError(
                f"failure_rate must be in [0, 1], got {self.failure_rate}"
            )

    def active(self, server_id: int, t: float) -> bool:
        return (self.server_id is None or self.server_id == server_id) and \
            self.start_s <= t < self.end_s


@dataclass(frozen=True)
class ServerCrash:
    """``server_id`` is down (fails all work instantly) during the window
    and recovers at ``end_s``."""

    start_s: float
    end_s: float
    server_id: int

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if self.server_id < 0:
            raise ValueError(f"server_id must be >= 0, got {self.server_id}")

    def active(self, server_id: int, t: float) -> bool:
        return self.server_id == server_id and self.start_s <= t < self.end_s


@dataclass(frozen=True)
class FaultPlan:
    """The full fault schedule of one chaos run (empty by default).

    Query methods are pure functions of ``(plan, arguments)``; nothing in
    the plan mutates, so one plan can drive baseline/chaos pairs and
    repeated runs deterministically.
    """

    seed: int = 0
    spikes: Tuple[LatencySpike, ...] = ()
    stalls: Tuple[KernelStall, ...] = ()
    failures: Tuple[TransientFailures, ...] = ()
    crashes: Tuple[ServerCrash, ...] = ()

    @property
    def empty(self) -> bool:
        return not (self.spikes or self.stalls or self.failures or self.crashes)

    def last_fault_end_s(self) -> float:
        """When the last scheduled fault clears (0.0 for an empty plan)."""
        ends = [w.end_s for group in (self.spikes, self.stalls,
                                      self.failures, self.crashes)
                for w in group]
        return max(ends, default=0.0)

    def boundaries(self, server_id: int) -> Tuple[float, ...]:
        """Sorted unique window edges relevant to ``server_id``.

        Rate-based simulators (e.g. the Ebird processor-sharing model)
        schedule a wake-up at each boundary so piecewise-constant fault
        multipliers are applied segment by segment.
        """
        times = set()
        for spike in self.spikes:
            if spike.server_id is None or spike.server_id == server_id:
                times.update((spike.start_s, spike.end_s))
        for window in self.failures:
            if window.server_id is None or window.server_id == server_id:
                times.update((window.start_s, window.end_s))
        for crash in self.crashes:
            if crash.server_id == server_id:
                times.update((crash.start_s, crash.end_s))
        for stall in self.stalls:  # name-keyed, not server-keyed
            times.update((stall.start_s, stall.end_s))
        return tuple(sorted(times))

    # -- per-server queries ----------------------------------------------------

    def latency_multiplier(self, server_id: int, t: float) -> float:
        """Product of all latency spikes active on the server at ``t``."""
        factor = 1.0
        for spike in self.spikes:
            if spike.active(server_id, t):
                factor *= spike.multiplier
        return factor

    def crashed(self, server_id: int, t: float) -> bool:
        return any(c.active(server_id, t) for c in self.crashes)

    def crash_end(self, server_id: int, t: float) -> float:
        """Recovery time of the crash covering ``t`` (``t`` if none)."""
        end = t
        for crash in self.crashes:
            if crash.active(server_id, t):
                end = max(end, crash.end_s)
        return end

    def crashed_during(self, server_id: int, start_s: float, end_s: float) -> Optional[float]:
        """Earliest crash moment inside ``[start_s, end_s]``, else None."""
        hit = None
        for crash in self.crashes:
            if crash.server_id != server_id:
                continue
            if crash.start_s <= end_s and crash.end_s > start_s:
                moment = max(crash.start_s, start_s)
                hit = moment if hit is None else min(hit, moment)
        return hit

    def failure_rate(self, server_id: int, t: float) -> float:
        """Strongest transient-failure rate active on the server at ``t``."""
        rate = 0.0
        for window in self.failures:
            if window.active(server_id, t):
                rate = max(rate, window.failure_rate)
        return rate

    def attempt_fails(self, req_id: int, attempt: int, server_id: int,
                      t: float) -> bool:
        """Deterministic verdict for one request attempt at time ``t``."""
        rate = self.failure_rate(server_id, t)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return unit_hash(self.seed, req_id, attempt, server_id) < rate

    # -- kernel-level hook -----------------------------------------------------

    def stall_multiplier(self, name: str, t: float) -> float:
        """Product of all kernel stalls matching ``name`` at stream time ``t``."""
        factor = 1.0
        for stall in self.stalls:
            if stall.active(name, t):
                factor *= stall.multiplier
        return factor

    def kernel_stall_fn(self) -> Optional[Callable[[str, float], float]]:
        """Hook for :attr:`repro.gpusim.Stream.stall_fn` (None if no stalls)."""
        if not self.stalls:
            return None
        return self.stall_multiplier


def unit_hash(*keys: object) -> float:
    """Map a key tuple to a deterministic uniform float in [0, 1).

    Stable across processes and platforms (unlike ``hash()``): the keys are
    rendered with ``repr`` and digested with BLAKE2b.  This is what makes
    transient failures and retry jitter replayable.
    """
    digest = hashlib.blake2b(repr(keys).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64
