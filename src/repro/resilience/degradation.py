"""Graceful degradation: fall down a ladder of cheaper models under stress.

A :class:`DegradationLadder` is an ordered list of rungs, best first.  Each
rung serves with some cost function — in practice a cheaper
:class:`~repro.serving.service.ModelVersion` from the registry (distilled,
quantized, fewer layers) — and the final rung may be *shedding*: answer
nobody old, cheaply, which reuses the :mod:`repro.serving.shedding`
semantics as the last line of defence.

A :class:`DegradationController` owns one run's position on the ladder.
The serving loop calls :meth:`DegradationController.on_round` before each
scheduling round with the current queue depth and breaker state; the
controller escalates one rung when stressed (breaker open, or depth above
``depth_threshold``) and de-escalates when calm (breaker closed and depth
at or below half the threshold — the hysteresis gap prevents flapping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

CostFn = Callable[[int, int], float]


@dataclass(frozen=True)
class DegradationRung:
    """One step of service quality.

    ``cost_fn`` prices batches at this rung; ``shed_age_s`` (optional)
    additionally sheds queued requests older than that age — set it on the
    last rung to bound the queue under extreme stress.  ``label`` names the
    rung in metrics/traces (e.g. ``bert@v2``, ``distilled``, ``shed``).
    """

    label: str
    cost_fn: CostFn
    shed_age_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("rung label must be non-empty")
        if self.shed_age_s is not None and self.shed_age_s <= 0:
            raise ValueError(f"shed_age_s must be positive, got {self.shed_age_s}")


class DegradationLadder:
    """Ordered rungs, full service first, cheapest/shedding last."""

    def __init__(self, rungs: Sequence[DegradationRung]) -> None:
        if not rungs:
            raise ValueError("a degradation ladder needs at least one rung")
        self.rungs: Tuple[DegradationRung, ...] = tuple(rungs)

    def __len__(self) -> int:
        return len(self.rungs)

    @classmethod
    def from_registry(
        cls,
        registry,  # repro.serving.service.ModelRegistry
        model_name: str,
        versions: Sequence[int],
        shed_age_s: Optional[float] = None,
    ) -> "DegradationLadder":
        """Build a ladder from registry versions (best quality first).

        ``shed_age_s`` arms shedding on the *last* rung.
        """
        rungs: List[DegradationRung] = []
        for i, version in enumerate(versions):
            model = registry.get(model_name, version)
            last = i == len(versions) - 1
            rungs.append(DegradationRung(
                label=f"{model.name}@v{model.version}",
                cost_fn=model.cost_fn,
                shed_age_s=shed_age_s if last else None,
            ))
        return cls(rungs)


class DegradationController:
    """One run's position on a ladder, with hysteresis and an audit trail."""

    def __init__(
        self,
        ladder: DegradationLadder,
        depth_threshold: int = 64,
        metrics=None,  # Optional[repro.observability.MetricsRegistry]
    ) -> None:
        if depth_threshold < 1:
            raise ValueError(
                f"depth_threshold must be >= 1, got {depth_threshold}"
            )
        self.ladder = ladder
        self.depth_threshold = depth_threshold
        self.metrics = metrics
        self.level = 0
        #: (time, from_level, to_level) of every ladder move, in order.
        self.switches: List[Tuple[float, int, int]] = []

    @property
    def rung(self) -> DegradationRung:
        return self.ladder.rungs[self.level]

    @property
    def cost_fn(self) -> CostFn:
        return self.rung.cost_fn

    @property
    def shed_age_s(self) -> Optional[float]:
        return self.rung.shed_age_s

    def _move(self, to: int, now_s: float) -> None:
        frm = self.level
        if to == frm:
            return
        self.level = to
        self.switches.append((now_s, frm, to))
        if self.metrics is not None:
            self.metrics.counter(
                "degradation_switches_total", rung=self.ladder.rungs[to].label
            ).inc()
            self.metrics.gauge("degradation_level").set(to, t=now_s)

    def on_round(self, queue_depth: int, breaker_open: bool, now_s: float) -> None:
        """Adjust the ladder position before a scheduling round.

        Escalate one rung when stressed; de-escalate one rung when calm
        (hysteresis at half the depth threshold).  One rung per round keeps
        transitions observable and avoids overshooting on a single spike.
        """
        stressed = breaker_open or queue_depth > self.depth_threshold
        calm = not breaker_open and queue_depth <= self.depth_threshold // 2
        if stressed and self.level + 1 < len(self.ladder):
            self._move(self.level + 1, now_s)
        elif calm and self.level > 0:
            self._move(self.level - 1, now_s)
