"""Fault injection and recovery for the serving stack (ISSUE 2).

Four independent, composable mechanisms, all deterministic and seeded:

* :class:`FaultPlan` (:mod:`.faults`) — a scripted schedule of latency
  spikes, kernel stalls, transient request failures and server
  crash/recover windows; an empty plan is the identity.
* :class:`RetryPolicy` / :class:`RetryState` (:mod:`.retry`) — exponential
  backoff with seeded jitter, per-request attempt caps, and a run-wide
  retry budget that bounds retry storms.
* :class:`CircuitBreaker` (:mod:`.breaker`) — per-replica closed → open →
  half-open state machine over a sliding failure-rate window; consulted by
  the cluster router when placing work.
* :class:`DegradationLadder` / :class:`DegradationController`
  (:mod:`.degradation`) — graceful fallback to cheaper model versions
  under stress, with shedding as the optional last rung.

:class:`ResilienceConfig` bundles them for ``simulate_serving`` /
``simulate_cluster``; :func:`run_chaos` (:mod:`.chaos`) drives scripted
scenarios end to end and asserts recovery (``python -m repro chaos``).
"""

from .breaker import BreakerState, CircuitBreaker
from .config import ResilienceConfig
from .degradation import (
    DegradationController,
    DegradationLadder,
    DegradationRung,
)
from .faults import (
    FaultPlan,
    KernelStall,
    LatencySpike,
    ServerCrash,
    TransientFailures,
    unit_hash,
)
from .retry import RetryPolicy, RetryState

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ResilienceConfig",
    "DegradationController",
    "DegradationLadder",
    "DegradationRung",
    "FaultPlan",
    "KernelStall",
    "LatencySpike",
    "ServerCrash",
    "TransientFailures",
    "unit_hash",
    "RetryPolicy",
    "RetryState",
    "ChaosReport",
    "ChaosScenario",
    "SCENARIOS",
    "run_chaos",
    "format_report",
    "GenChaosReport",
    "GenChaosScenario",
    "GEN_SCENARIOS",
    "run_gen_chaos",
    "format_gen_report",
]


def __getattr__(name: str):
    # The chaos harness imports the serving layer; loading it lazily keeps
    # ``repro.serving`` free to import this package without a cycle.
    if name in ("ChaosReport", "ChaosScenario", "SCENARIOS", "run_chaos",
                "format_report", "GenChaosReport", "GenChaosScenario",
                "GEN_SCENARIOS", "run_gen_chaos", "format_gen_report"):
        from . import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
