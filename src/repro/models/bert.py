"""BERT encoder: symbolic computation graph + NumPy forward pass.

The graph builder emits *fine-grained* nodes (every bias add, transpose,
activation and reduction is its own operator).  This is exactly what a
training framework executes; the Turbo runtime obtains its kernel schedule
by running :func:`repro.graph.fuse_graph` over it (Fig. 3), so one builder
serves both the baseline and the optimized runtimes.

Graph dimensions are symbolic over ``batch`` and ``seq`` — the whole point
of the paper's variable-length design: the same graph is re-planned per
request once the sequence length is known.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph import ComputationGraph, OpType, TensorKind
from ..kernels import (
    add_bias,
    add_bias_gelu,
    add_bias_layernorm,
    bert_embeddings,
    gelu,
    layernorm_one_pass,
    layernorm_reference,
    linear,
    multi_head_attention,
    padding_mask_from_lengths,
)
from .config import AlbertConfig, TransformerConfig
from .weights import ModelWeights

BATCH = "batch"
SEQ = "seq"


def build_encoder_graph(config: TransformerConfig) -> ComputationGraph:
    """Fine-grained encoder graph for BERT (and ALBERT) configurations.

    ALBERT shares weights across layers; structurally the graph is the same
    (weight tensors are registered once and referenced by every layer),
    plus the factorized-embedding projection GEMM.
    """
    g = ComputationGraph(name=config.name)
    hidden = config.hidden_size
    heads = config.num_heads
    head_size = config.head_size
    inner = config.intermediate_size
    is_albert = isinstance(config, AlbertConfig)
    embed_dim = config.embedding_size if is_albert else hidden

    g.tensor("input_ids", (BATCH, SEQ), TensorKind.INPUT, dtype_bytes=8)
    g.tensor("embed_table", (config.vocab_size, embed_dim), TensorKind.WEIGHT)

    g.tensor("embed_sum", (BATCH, SEQ, embed_dim))
    g.add_node(
        "embedding", OpType.EMBEDDING,
        inputs=("input_ids", "embed_table"), outputs=("embed_sum",),
        nelems=(BATCH, SEQ, embed_dim),
    )
    g.tensor("embed_norm", (BATCH, SEQ, embed_dim))
    g.add_node(
        "embedding_ln", OpType.LAYERNORM,
        inputs=("embed_sum",), outputs=("embed_norm",),
        rows=(BATCH, SEQ), row_len=embed_dim,
    )
    hidden_name = "embed_norm"
    if is_albert:
        g.tensor("embed_proj_w", (embed_dim, hidden), TensorKind.WEIGHT)
        g.tensor("embed_proj", (BATCH, SEQ, hidden))
        g.add_node(
            "embedding_projection", OpType.GEMM,
            inputs=(hidden_name, "embed_proj_w"), outputs=("embed_proj",),
            m=(BATCH, SEQ), n=hidden, k=embed_dim,
        )
        hidden_name = "embed_proj"

    def weight(name: str, *dims: int, layer: int) -> str:
        """Register a weight tensor; ALBERT reuses layer 0's tensors."""
        if is_albert:
            shared = f"shared.{name}"
            if shared not in g.tensors:
                g.tensor(shared, dims, TensorKind.WEIGHT)
            return shared
        full = f"l{layer}.{name}"
        g.tensor(full, dims, TensorKind.WEIGHT)
        return full

    for layer in range(config.num_layers):
        p = f"l{layer}"
        residual_in = hidden_name

        # -- multi-head attention: QKV projections -------------------------
        for proj in ("q", "k", "v"):
            w = weight(f"w{proj}", hidden, hidden, layer=layer)
            g.tensor(f"{p}.{proj}_proj", (BATCH, SEQ, hidden))
            g.add_node(
                f"{p}.{proj}_gemm", OpType.GEMM,
                inputs=(hidden_name, w), outputs=(f"{p}.{proj}_proj",),
                m=(BATCH, SEQ), n=hidden, k=hidden,
            )
        # bias add + split-heads transpose for each of q/k/v (fusable run).
        for proj in ("q", "k", "v"):
            g.tensor(f"{p}.{proj}_biased", (BATCH, SEQ, hidden))
            g.add_node(
                f"{p}.{proj}_bias", OpType.ELEMENTWISE,
                inputs=(f"{p}.{proj}_proj",), outputs=(f"{p}.{proj}_biased",),
                nelems=(BATCH, SEQ, hidden), reads=1, writes=1, flops_per_elem=1,
            )
            g.tensor(f"{p}.{proj}_heads", (BATCH, heads, SEQ, head_size))
            g.add_node(
                f"{p}.{proj}_transpose", OpType.TRANSPOSE,
                inputs=(f"{p}.{proj}_biased",), outputs=(f"{p}.{proj}_heads",),
                nelems=(BATCH, SEQ, hidden),
            )

        # -- scaled dot-product attention ----------------------------------
        g.tensor(f"{p}.scores", (BATCH, heads, SEQ, SEQ))
        g.add_node(
            f"{p}.scores_gemm", OpType.BATCHED_GEMM,
            inputs=(f"{p}.q_heads", f"{p}.k_heads"), outputs=(f"{p}.scores",),
            m=SEQ, n=SEQ, k=head_size, batch=(BATCH, heads),
        )
        g.tensor(f"{p}.scaled", (BATCH, heads, SEQ, SEQ))
        g.add_node(
            f"{p}.scale", OpType.ELEMENTWISE,
            inputs=(f"{p}.scores",), outputs=(f"{p}.scaled",),
            nelems=(BATCH, heads, SEQ, SEQ), reads=1, writes=1, flops_per_elem=1,
        )
        g.tensor(f"{p}.probs", (BATCH, heads, SEQ, SEQ))
        g.add_node(
            f"{p}.softmax", OpType.SOFTMAX,
            inputs=(f"{p}.scaled",), outputs=(f"{p}.probs",),
            rows=(BATCH, heads, SEQ), row_len=SEQ,
        )
        g.tensor(f"{p}.context", (BATCH, heads, SEQ, head_size))
        g.add_node(
            f"{p}.context_gemm", OpType.BATCHED_GEMM,
            inputs=(f"{p}.probs", f"{p}.v_heads"), outputs=(f"{p}.context",),
            m=SEQ, n=head_size, k=SEQ, batch=(BATCH, heads),
        )
        g.tensor(f"{p}.context_merged", (BATCH, SEQ, hidden))
        g.add_node(
            f"{p}.merge_heads", OpType.TRANSPOSE,
            inputs=(f"{p}.context",), outputs=(f"{p}.context_merged",),
            nelems=(BATCH, SEQ, hidden),
        )
        wo = weight("wo", hidden, hidden, layer=layer)
        g.tensor(f"{p}.attn_out", (BATCH, SEQ, hidden))
        g.add_node(
            f"{p}.out_gemm", OpType.GEMM,
            inputs=(f"{p}.context_merged", wo), outputs=(f"{p}.attn_out",),
            m=(BATCH, SEQ), n=hidden, k=hidden,
        )
        # bias + residual + layernorm (the post-GEMM fusable run of Fig. 3).
        g.tensor(f"{p}.attn_residual", (BATCH, SEQ, hidden))
        g.add_node(
            f"{p}.attn_add", OpType.ELEMENTWISE,
            inputs=(f"{p}.attn_out", residual_in), outputs=(f"{p}.attn_residual",),
            nelems=(BATCH, SEQ, hidden), reads=2, writes=1, flops_per_elem=2,
        )
        g.tensor(f"{p}.attn_norm", (BATCH, SEQ, hidden))
        g.add_node(
            f"{p}.attn_ln", OpType.LAYERNORM,
            inputs=(f"{p}.attn_residual",), outputs=(f"{p}.attn_norm",),
            rows=(BATCH, SEQ), row_len=hidden,
        )

        # -- feed-forward network ------------------------------------------
        w1 = weight("ffn_w1", hidden, inner, layer=layer)
        g.tensor(f"{p}.ffn_inner", (BATCH, SEQ, inner))
        g.add_node(
            f"{p}.ffn1_gemm", OpType.GEMM,
            inputs=(f"{p}.attn_norm", w1), outputs=(f"{p}.ffn_inner",),
            m=(BATCH, SEQ), n=inner, k=hidden,
        )
        g.tensor(f"{p}.ffn_act", (BATCH, SEQ, inner))
        g.add_node(
            f"{p}.ffn_bias_gelu", OpType.ELEMENTWISE,
            inputs=(f"{p}.ffn_inner",), outputs=(f"{p}.ffn_act",),
            nelems=(BATCH, SEQ, inner), reads=1, writes=1, flops_per_elem=12,
        )
        w2 = weight("ffn_w2", inner, hidden, layer=layer)
        g.tensor(f"{p}.ffn_out", (BATCH, SEQ, hidden))
        g.add_node(
            f"{p}.ffn2_gemm", OpType.GEMM,
            inputs=(f"{p}.ffn_act", w2), outputs=(f"{p}.ffn_out",),
            m=(BATCH, SEQ), n=hidden, k=inner,
        )
        is_last = layer == config.num_layers - 1
        out_kind = TensorKind.OUTPUT if is_last else TensorKind.INTERMEDIATE
        g.tensor(f"{p}.ffn_residual", (BATCH, SEQ, hidden))
        g.add_node(
            f"{p}.ffn_add", OpType.ELEMENTWISE,
            inputs=(f"{p}.ffn_out", f"{p}.attn_norm"), outputs=(f"{p}.ffn_residual",),
            nelems=(BATCH, SEQ, hidden), reads=2, writes=1, flops_per_elem=2,
        )
        g.tensor(f"{p}.output", (BATCH, SEQ, hidden), kind=out_kind)
        g.add_node(
            f"{p}.ffn_ln", OpType.LAYERNORM,
            inputs=(f"{p}.ffn_residual",), outputs=(f"{p}.output",),
            rows=(BATCH, SEQ), row_len=hidden,
        )
        hidden_name = f"{p}.output"

    g.validate()
    return g


def encoder_forward(
    config: TransformerConfig,
    weights: ModelWeights,
    token_ids: np.ndarray,
    lengths: Optional[np.ndarray] = None,
    fused: bool = True,
) -> np.ndarray:
    """Numeric forward pass matching :func:`build_encoder_graph`.

    ``fused`` toggles between the fused kernel path (Turbo) and the
    reference kernel path (framework); outputs agree to FP rounding.
    Returns final hidden states ``[batch, seq, hidden]``.
    """
    token_ids = np.asarray(token_ids)
    if token_ids.ndim != 2:
        raise ValueError(f"token_ids must be [batch, seq], got {token_ids.shape}")
    mask = None
    if lengths is not None:
        mask = padding_mask_from_lengths(np.asarray(lengths), token_ids.shape[1])

    x = bert_embeddings(
        weights.token_embedding,
        weights.position_embedding,
        weights.segment_embedding,
        token_ids,
    )
    if fused:
        x = layernorm_one_pass(x, weights.embedding_ln_gamma, weights.embedding_ln_beta,
                               eps=config.layer_norm_eps)
    else:
        x = layernorm_reference(x, weights.embedding_ln_gamma, weights.embedding_ln_beta,
                                eps=config.layer_norm_eps)
    if weights.embedding_projection is not None:
        x = x @ weights.embedding_projection

    for layer_weights in weights.layers:
        attn = multi_head_attention(
            x, layer_weights.attention, config.num_heads, mask=mask, fused=fused,
            add_output_bias=not fused,
        )
        if fused:
            x = add_bias_layernorm(
                attn, x, layer_weights.attention.bo,
                layer_weights.attn_ln_gamma, layer_weights.attn_ln_beta,
                eps=config.layer_norm_eps,
            )
        else:
            x = layernorm_reference(
                attn + x, layer_weights.attn_ln_gamma, layer_weights.attn_ln_beta,
                eps=config.layer_norm_eps,
            )
        inner = linear(x, layer_weights.ffn_w1)
        if fused:
            inner = add_bias_gelu(inner, layer_weights.ffn_b1, out=inner)
        else:
            inner = gelu(add_bias(inner, layer_weights.ffn_b1))
        ffn_out = linear(inner, layer_weights.ffn_w2)
        if fused:
            x = add_bias_layernorm(
                ffn_out, x, layer_weights.ffn_b2,
                layer_weights.ffn_ln_gamma, layer_weights.ffn_ln_beta,
                eps=config.layer_norm_eps,
            )
        else:
            x = layernorm_reference(
                ffn_out + layer_weights.ffn_b2 + x,
                layer_weights.ffn_ln_gamma, layer_weights.ffn_ln_beta,
                eps=config.layer_norm_eps,
            )
    return x
