"""Seq2Seq transformer decoder with beam search (paper Table 3, Fig. 10).

The paper evaluates a 6-layer, 16-head decoder on Chinese-English
translation with beam size 4.  Decoding is autoregressive: step ``t``
attends over ``t`` cached target positions (self-attention) and over the
``src_len`` encoder memory (cross-attention), and ends with the
vocabulary projection — so per-step cost *grows with t*, and total latency
is the sum over generated steps.

Two artefacts are provided:

* :func:`build_decoder_step_graph` — a symbolic graph of ONE decode step,
  parameterized over ``beam``, ``tgt_pos`` (current target length) and
  ``src_len``; runtimes integrate it over steps for end-to-end cost.
* :func:`beam_search` — a real NumPy beam-search decode (full-prefix
  recompute; numerics only, used by tests/examples on tiny configs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..graph import ComputationGraph, OpType, TensorKind
from ..kernels import multi_head_attention, layernorm_one_pass, linear, add_bias_gelu
from ..kernels.softmax import softmax_reference
from .config import Seq2SeqConfig
from .weights import DecoderWeights

BEAM = "beam"
TGT = "tgt_pos"  # number of target positions attended (includes current)
SRC = "src_len"


def build_decoder_step_graph(config: Seq2SeqConfig) -> ComputationGraph:
    """Symbolic graph of one beam-search decode step (query length 1).

    Cross-attention K/V are projected once per request (not per step), so
    they appear here as persistent INPUT tensors.  Nodes are fine-grained
    (each bias add, transpose, activation and reduction is its own
    operator) just like the encoder builder — the Turbo runtime collapses
    them via the fusion pass, the PyTorch-like baseline launches each one.
    Per-step cost grows with ``tgt_pos`` (the KV cache length).
    """
    g = ComputationGraph(name=f"{config.name}.step")
    hidden = config.hidden_size
    heads = config.num_heads
    head_size = config.head_size
    inner = config.intermediate_size

    g.tensor("step_input", (BEAM, 1, hidden), TensorKind.INPUT)
    g.tensor("memory_k", (BEAM, heads, SRC, head_size), TensorKind.INPUT)
    g.tensor("memory_v", (BEAM, heads, SRC, head_size), TensorKind.INPUT)
    hidden_name = "step_input"

    def attention_core(p: str, query: str, kv_k: str, kv_v: str, kv_len,
                       out_prefix: str) -> str:
        """Scores -> scale -> softmax -> context -> merge -> output GEMM
        -> bias -> residual -> layernorm.  Returns the normalized output."""
        g.tensor(f"{out_prefix}.scores", (BEAM, heads, 1, kv_len))
        g.add_node(
            f"{out_prefix}.scores_gemm", OpType.BATCHED_GEMM,
            inputs=(query, kv_k), outputs=(f"{out_prefix}.scores",),
            m=1, n=kv_len, k=head_size, batch=(BEAM, heads),
        )
        g.tensor(f"{out_prefix}.scaled", (BEAM, heads, 1, kv_len))
        g.add_node(
            f"{out_prefix}.scale", OpType.ELEMENTWISE,
            inputs=(f"{out_prefix}.scores",), outputs=(f"{out_prefix}.scaled",),
            nelems=(BEAM, heads, kv_len), reads=1, writes=1, flops_per_elem=1,
        )
        g.tensor(f"{out_prefix}.probs", (BEAM, heads, 1, kv_len))
        g.add_node(
            f"{out_prefix}.softmax", OpType.SOFTMAX,
            inputs=(f"{out_prefix}.scaled",), outputs=(f"{out_prefix}.probs",),
            rows=(BEAM, heads), row_len=kv_len,
        )
        g.tensor(f"{out_prefix}.context", (BEAM, heads, 1, head_size))
        g.add_node(
            f"{out_prefix}.context_gemm", OpType.BATCHED_GEMM,
            inputs=(f"{out_prefix}.probs", kv_v), outputs=(f"{out_prefix}.context",),
            m=1, n=head_size, k=kv_len, batch=(BEAM, heads),
        )
        g.tensor(f"{out_prefix}.merged", (BEAM, 1, hidden))
        g.add_node(
            f"{out_prefix}.merge_heads", OpType.TRANSPOSE,
            inputs=(f"{out_prefix}.context",), outputs=(f"{out_prefix}.merged",),
            nelems=(BEAM, hidden),
        )
        g.tensor(f"{out_prefix}.wo", (hidden, hidden), TensorKind.WEIGHT)
        g.tensor(f"{out_prefix}.out", (BEAM, 1, hidden))
        g.add_node(
            f"{out_prefix}.out_gemm", OpType.GEMM,
            inputs=(f"{out_prefix}.merged", f"{out_prefix}.wo"),
            outputs=(f"{out_prefix}.out",),
            m=(BEAM,), n=hidden, k=hidden,
        )
        g.tensor(f"{out_prefix}.biased", (BEAM, 1, hidden))
        g.add_node(
            f"{out_prefix}.out_bias", OpType.ELEMENTWISE,
            inputs=(f"{out_prefix}.out",), outputs=(f"{out_prefix}.biased",),
            nelems=(BEAM, hidden), reads=1, writes=1, flops_per_elem=1,
        )
        g.tensor(f"{out_prefix}.residual", (BEAM, 1, hidden))
        g.add_node(
            f"{out_prefix}.residual_add", OpType.ELEMENTWISE,
            inputs=(f"{out_prefix}.biased", query if False else hidden_ref[0]),
            outputs=(f"{out_prefix}.residual",),
            nelems=(BEAM, hidden), reads=2, writes=1, flops_per_elem=1,
        )
        g.tensor(f"{out_prefix}.norm", (BEAM, 1, hidden))
        g.add_node(
            f"{out_prefix}.ln", OpType.LAYERNORM,
            inputs=(f"{out_prefix}.residual",), outputs=(f"{out_prefix}.norm",),
            rows=(BEAM,), row_len=hidden,
        )
        return f"{out_prefix}.norm"

    hidden_ref = [hidden_name]
    for layer in range(config.num_layers):
        p = f"l{layer}"
        g.tensor(f"{p}.self_kcache", (BEAM, heads, TGT, head_size), TensorKind.INPUT)
        g.tensor(f"{p}.self_vcache", (BEAM, heads, TGT, head_size), TensorKind.INPUT)

        # Self-attention QKV projections of the single new position.
        for proj in ("q", "k", "v"):
            g.tensor(f"{p}.self_w{proj}", (hidden, hidden), TensorKind.WEIGHT)
            g.tensor(f"{p}.self_{proj}", (BEAM, 1, hidden))
            g.add_node(
                f"{p}.self_{proj}_gemm", OpType.GEMM,
                inputs=(hidden_ref[0], f"{p}.self_w{proj}"),
                outputs=(f"{p}.self_{proj}",),
                m=(BEAM,), n=hidden, k=hidden,
            )
        for proj in ("q", "k", "v"):
            g.tensor(f"{p}.self_{proj}_biased", (BEAM, 1, hidden))
            g.add_node(
                f"{p}.self_{proj}_bias", OpType.ELEMENTWISE,
                inputs=(f"{p}.self_{proj}",), outputs=(f"{p}.self_{proj}_biased",),
                nelems=(BEAM, hidden), reads=1, writes=1, flops_per_elem=1,
            )
            # New-token K/V head splits are appended to the cache by the
            # runtime between steps — they leave the graph as outputs.
            kind = (TensorKind.INTERMEDIATE if proj == "q"
                    else TensorKind.OUTPUT)
            g.tensor(f"{p}.self_{proj}_heads", (BEAM, heads, 1, head_size),
                     kind)
            g.add_node(
                f"{p}.self_{proj}_transpose", OpType.TRANSPOSE,
                inputs=(f"{p}.self_{proj}_biased",),
                outputs=(f"{p}.self_{proj}_heads",),
                nelems=(BEAM, hidden),
            )
        self_out = attention_core(
            p, f"{p}.self_q_heads", f"{p}.self_kcache", f"{p}.self_vcache",
            TGT, f"{p}.self",
        )
        hidden_ref[0] = self_out

        # Cross-attention over the encoder memory (K/V precomputed).
        g.tensor(f"{p}.cross_wq", (hidden, hidden), TensorKind.WEIGHT)
        g.tensor(f"{p}.cross_q", (BEAM, 1, hidden))
        g.add_node(
            f"{p}.cross_q_gemm", OpType.GEMM,
            inputs=(self_out, f"{p}.cross_wq"), outputs=(f"{p}.cross_q",),
            m=(BEAM,), n=hidden, k=hidden,
        )
        g.tensor(f"{p}.cross_q_biased", (BEAM, 1, hidden))
        g.add_node(
            f"{p}.cross_q_bias", OpType.ELEMENTWISE,
            inputs=(f"{p}.cross_q",), outputs=(f"{p}.cross_q_biased",),
            nelems=(BEAM, hidden), reads=1, writes=1, flops_per_elem=1,
        )
        g.tensor(f"{p}.cross_q_heads", (BEAM, heads, 1, head_size))
        g.add_node(
            f"{p}.cross_q_transpose", OpType.TRANSPOSE,
            inputs=(f"{p}.cross_q_biased",), outputs=(f"{p}.cross_q_heads",),
            nelems=(BEAM, hidden),
        )
        cross_out = attention_core(
            p, f"{p}.cross_q_heads", "memory_k", "memory_v", SRC, f"{p}.cross",
        )
        hidden_ref[0] = cross_out

        # Feed-forward network.
        g.tensor(f"{p}.ffn_w1", (hidden, inner), TensorKind.WEIGHT)
        g.tensor(f"{p}.ffn_inner", (BEAM, 1, inner))
        g.add_node(
            f"{p}.ffn1_gemm", OpType.GEMM,
            inputs=(cross_out, f"{p}.ffn_w1"), outputs=(f"{p}.ffn_inner",),
            m=(BEAM,), n=inner, k=hidden,
        )
        g.tensor(f"{p}.ffn_biased", (BEAM, 1, inner))
        g.add_node(
            f"{p}.ffn_bias", OpType.ELEMENTWISE,
            inputs=(f"{p}.ffn_inner",), outputs=(f"{p}.ffn_biased",),
            nelems=(BEAM, inner), reads=1, writes=1, flops_per_elem=1,
        )
        g.tensor(f"{p}.ffn_act", (BEAM, 1, inner))
        g.add_node(
            f"{p}.ffn_gelu", OpType.ELEMENTWISE,
            inputs=(f"{p}.ffn_biased",), outputs=(f"{p}.ffn_act",),
            nelems=(BEAM, inner), reads=1, writes=1, flops_per_elem=12,
        )
        g.tensor(f"{p}.ffn_w2", (inner, hidden), TensorKind.WEIGHT)
        g.tensor(f"{p}.ffn_out", (BEAM, 1, hidden))
        g.add_node(
            f"{p}.ffn2_gemm", OpType.GEMM,
            inputs=(f"{p}.ffn_act", f"{p}.ffn_w2"), outputs=(f"{p}.ffn_out",),
            m=(BEAM,), n=hidden, k=inner,
        )
        g.tensor(f"{p}.ffn_residual", (BEAM, 1, hidden))
        g.add_node(
            f"{p}.ffn_add", OpType.ELEMENTWISE,
            inputs=(f"{p}.ffn_out", cross_out), outputs=(f"{p}.ffn_residual",),
            nelems=(BEAM, hidden), reads=2, writes=1, flops_per_elem=2,
        )
        g.tensor(f"{p}.output", (BEAM, 1, hidden))
        g.add_node(
            f"{p}.ffn_ln", OpType.LAYERNORM,
            inputs=(f"{p}.ffn_residual",), outputs=(f"{p}.output",),
            rows=(BEAM,), row_len=hidden,
        )
        hidden_ref[0] = f"{p}.output"

    # Vocabulary projection + softmax over the vocab — the per-step cost
    # leader for small beams.
    g.tensor("logit_w", (hidden, config.vocab_size), TensorKind.WEIGHT)
    g.tensor("logits", (BEAM, 1, config.vocab_size))
    g.add_node(
        "logit_gemm", OpType.GEMM,
        inputs=(hidden_ref[0], "logit_w"), outputs=("logits",),
        m=(BEAM,), n=config.vocab_size, k=hidden,
    )
    g.tensor("log_probs", (BEAM, 1, config.vocab_size), kind=TensorKind.OUTPUT)
    g.add_node(
        "vocab_softmax", OpType.SOFTMAX,
        inputs=("logits",), outputs=("log_probs",),
        rows=(BEAM,), row_len=config.vocab_size,
    )
    g.validate()
    return g


# ---------------------------------------------------------------------------
# Numeric beam search (full-prefix recompute; for tests and examples).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BeamHypothesis:
    """One finished (or running) beam: generated tokens and its log-prob."""

    tokens: List[int]
    score: float


def _decoder_forward(
    config: Seq2SeqConfig,
    weights: DecoderWeights,
    target_ids: np.ndarray,
    memory: np.ndarray,
) -> np.ndarray:
    """Forward the full target prefix; returns logits of the last position.

    ``target_ids`` is ``[beam, t]``; ``memory`` is ``[beam, src, hidden]``.
    Causality holds trivially because we only read the final position.
    """
    beam, t = target_ids.shape
    x = weights.token_embedding[target_ids] + weights.position_embedding[:t][None]
    # Causal mask over the prefix: position i may attend to j <= i.
    causal = np.triu(np.full((t, t), -1e9, dtype=np.float32), k=1)[None, None]
    for lw in weights.layers:
        attn = multi_head_attention(
            x, lw.self_attention, config.num_heads, mask=causal, fused=True
        )
        x = layernorm_one_pass(attn + x, lw.self_ln_gamma, lw.self_ln_beta,
                               eps=config.layer_norm_eps)
        cross = multi_head_attention(
            x, lw.cross_attention, config.num_heads, kv_states=memory, fused=True
        )
        x = layernorm_one_pass(cross + x, lw.cross_ln_gamma, lw.cross_ln_beta,
                               eps=config.layer_norm_eps)
        inner = linear(x, lw.ffn_w1)
        inner = add_bias_gelu(inner, lw.ffn_b1, out=inner)
        ffn = linear(inner, lw.ffn_w2, lw.ffn_b2)
        x = layernorm_one_pass(ffn + x, lw.ffn_ln_gamma, lw.ffn_ln_beta,
                               eps=config.layer_norm_eps)
    return linear(x[:, -1, :], weights.output_projection)


def beam_search(
    config: Seq2SeqConfig,
    weights: DecoderWeights,
    memory: np.ndarray,
    bos_id: int = 1,
    eos_id: int = 2,
    max_len: Optional[int] = None,
) -> BeamHypothesis:
    """Standard length-capped beam search over the decoder.

    ``memory`` is the encoder output ``[src_len, hidden]`` for one source
    sentence; returns the best hypothesis (tokens exclude BOS).
    """
    memory = np.asarray(memory)
    if memory.ndim != 2 or memory.shape[1] != config.hidden_size:
        raise ValueError(
            f"memory must be [src_len, {config.hidden_size}], got {memory.shape}"
        )
    beam = config.beam_size
    limit = max_len if max_len is not None else config.max_target_len
    limit = min(limit, config.max_position - 1)

    sequences = np.full((1, 1), bos_id, dtype=np.int64)
    scores = np.zeros(1, dtype=np.float64)
    finished: List[BeamHypothesis] = []

    for _ in range(limit):
        mem = np.broadcast_to(memory, (sequences.shape[0],) + memory.shape)
        logits = _decoder_forward(config, weights, sequences, mem)
        log_probs = np.log(softmax_reference(logits.astype(np.float64)) + 1e-12)
        total = scores[:, None] + log_probs  # [live_beams, vocab]
        flat = total.ravel()
        k = min(beam, flat.size)
        top = np.argpartition(-flat, k - 1)[:k]
        top = top[np.argsort(-flat[top])]
        next_sequences: List[np.ndarray] = []
        next_scores: List[float] = []
        for idx in top:
            parent, token = divmod(int(idx), log_probs.shape[1])
            candidate = np.append(sequences[parent], token)
            if token == eos_id:
                finished.append(
                    BeamHypothesis(tokens=candidate[1:].tolist(), score=float(flat[idx]))
                )
            else:
                next_sequences.append(candidate)
                next_scores.append(float(flat[idx]))
        if not next_sequences or len(finished) >= beam:
            break
        sequences = np.stack(next_sequences)
        scores = np.asarray(next_scores)

    if not finished:
        finished = [
            BeamHypothesis(tokens=sequences[i, 1:].tolist(), score=float(scores[i]))
            for i in range(sequences.shape[0])
        ]
    return max(finished, key=lambda h: h.score)
