"""End-to-end Seq2Seq translation: encoder + beam-search decoder.

The paper's decoder experiments assume encoder memory is available; this
module completes the pipeline (Fig. 1's full encoder-decoder architecture):
a transformer encoder over the source sentence produces the memory the
cross-attention consumes, and :meth:`Seq2SeqModel.translate` runs the whole
thing numerically.  :class:`Seq2SeqLatencyModel` composes the encoder and
decoder cost models for end-to-end serving latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..gpusim import DeviceSpec, RTX_2060
from .bert import build_encoder_graph, encoder_forward
from .config import Seq2SeqConfig, TransformerConfig
from .decoder import BeamHypothesis, beam_search, build_decoder_step_graph
from .weights import (
    DecoderWeights,
    ModelWeights,
    init_decoder_weights,
    init_encoder_weights,
)


def encoder_config_for(config: Seq2SeqConfig) -> TransformerConfig:
    """Source-side encoder matching the decoder's geometry (Fig. 1)."""
    return TransformerConfig(
        name=f"{config.name}.encoder",
        num_layers=config.num_layers,
        num_heads=config.num_heads,
        head_size=config.head_size,
        intermediate_ratio=config.intermediate_ratio,
        vocab_size=config.vocab_size,
        max_position=config.max_position,
    )


@dataclass
class Seq2SeqModel:
    """A complete translation model: encoder weights + decoder weights."""

    config: Seq2SeqConfig
    encoder_weights: ModelWeights
    decoder_weights: DecoderWeights

    @classmethod
    def random_init(cls, config: Seq2SeqConfig, seed: int = 0) -> "Seq2SeqModel":
        return cls(
            config=config,
            encoder_weights=init_encoder_weights(encoder_config_for(config),
                                                 seed=seed),
            decoder_weights=init_decoder_weights(config, seed=seed + 1),
        )

    def encode(self, source_ids: np.ndarray) -> np.ndarray:
        """Encoder memory ``[batch, src_len, hidden]`` for source ids."""
        source_ids = np.asarray(source_ids)
        if source_ids.ndim != 2:
            raise ValueError(f"source_ids must be [batch, src], got {source_ids.shape}")
        return encoder_forward(
            encoder_config_for(self.config), self.encoder_weights, source_ids
        )

    def translate(
        self,
        source_ids: np.ndarray,
        max_len: Optional[int] = None,
        bos_id: int = 1,
        eos_id: int = 2,
    ) -> List[BeamHypothesis]:
        """Translate a batch of source sentences (one hypothesis each)."""
        memory = self.encode(source_ids)
        return [
            beam_search(
                self.config, self.decoder_weights, memory[i],
                bos_id=bos_id, eos_id=eos_id, max_len=max_len,
            )
            for i in range(memory.shape[0])
        ]


class Seq2SeqLatencyModel:
    """End-to-end translation latency: one encoder pass + T decode steps.

    The encoder runs once per request over the source; the decoder is the
    per-step model of :class:`repro.runtime.DecoderRuntime`.  Constructed
    lazily to avoid importing the runtime package at models-import time.
    """

    def __init__(
        self,
        config: Seq2SeqConfig,
        chars,  # RuntimeCharacteristics
        device: DeviceSpec = RTX_2060,
        step_overhead_s: float = 0.0,
    ) -> None:
        from ..runtime.base import DecoderRuntime, InferenceRuntime

        self.config = config
        encoder_graph = build_encoder_graph(encoder_config_for(config))
        self.encoder_runtime = InferenceRuntime(encoder_graph, chars, device)
        self.decoder_runtime = DecoderRuntime(
            build_decoder_step_graph(config), chars, device,
            beam_size=config.beam_size, step_overhead_s=step_overhead_s,
        )

    def translate_latency(self, src_len: int, tgt_len: Optional[int] = None) -> float:
        """Seconds to translate one sentence of ``src_len`` tokens."""
        if src_len <= 0:
            raise ValueError(f"src_len must be positive, got {src_len}")
        target = tgt_len if tgt_len is not None else src_len
        encode_s = self.encoder_runtime.latency(1, src_len)
        decode_s = self.decoder_runtime.decode_latency(src_len, target)
        return encode_s + decode_s
