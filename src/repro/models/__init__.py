"""Transformer models evaluated by the paper: BERT, ALBERT, Seq2Seq decoder."""

from .albert import albert_forward, build_albert_graph, init_albert_weights
from .bert import build_encoder_graph, encoder_forward
from .config import (
    AlbertConfig,
    BertConfig,
    Seq2SeqConfig,
    TransformerConfig,
    albert_base,
    bert_base,
    seq2seq_decoder,
    tiny_albert,
    tiny_bert,
    tiny_seq2seq,
)
from .decoder import BeamHypothesis, beam_search, build_decoder_step_graph
from .gpt import (
    GptConfig,
    GptWeights,
    build_decode_step_graph,
    build_prefill_graph,
    generate,
    gpt_small,
    init_gpt_weights,
    tiny_gpt,
)
from .io import (
    load_decoder_weights,
    load_encoder_weights,
    save_decoder_weights,
    save_encoder_weights,
)
from .seq2seq import Seq2SeqLatencyModel, Seq2SeqModel, encoder_config_for
from .weights import (
    DecoderLayerWeights,
    DecoderWeights,
    LayerWeights,
    ModelWeights,
    init_decoder_weights,
    init_encoder_weights,
)

__all__ = [
    "TransformerConfig",
    "BertConfig",
    "AlbertConfig",
    "Seq2SeqConfig",
    "bert_base",
    "albert_base",
    "seq2seq_decoder",
    "tiny_bert",
    "tiny_albert",
    "tiny_seq2seq",
    "build_encoder_graph",
    "encoder_forward",
    "build_albert_graph",
    "albert_forward",
    "init_albert_weights",
    "build_decoder_step_graph",
    "beam_search",
    "BeamHypothesis",
    "ModelWeights",
    "LayerWeights",
    "DecoderWeights",
    "DecoderLayerWeights",
    "init_encoder_weights",
    "init_decoder_weights",
    "save_encoder_weights",
    "load_encoder_weights",
    "save_decoder_weights",
    "load_decoder_weights",
    "Seq2SeqModel",
    "Seq2SeqLatencyModel",
    "encoder_config_for",
    "GptConfig",
    "GptWeights",
    "gpt_small",
    "tiny_gpt",
    "build_prefill_graph",
    "build_decode_step_graph",
    "init_gpt_weights",
    "generate",
]
