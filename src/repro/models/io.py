"""Checkpoint persistence: save/load model weights as ``.npz`` archives.

The paper's runtime "loads a pre-trained model" before serving; this is the
reproduction's checkpoint layer.  Weights are stored flat with dotted keys
(``layers.3.ffn_w1``); ALBERT's shared layers are stored once and re-linked
on load, preserving both the footprint advantage and object identity.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..kernels.attention import AttentionWeights
from .weights import (
    DecoderLayerWeights,
    DecoderWeights,
    LayerWeights,
    ModelWeights,
)

_ATTN_FIELDS = ("wq", "bq", "wk", "bk", "wv", "bv", "wo", "bo")
_LAYER_FIELDS = (
    "attn_ln_gamma", "attn_ln_beta", "ffn_w1", "ffn_b1", "ffn_w2", "ffn_b2",
    "ffn_ln_gamma", "ffn_ln_beta",
)
_DECODER_LAYER_FIELDS = (
    "self_ln_gamma", "self_ln_beta", "cross_ln_gamma", "cross_ln_beta",
    "ffn_w1", "ffn_b1", "ffn_w2", "ffn_b2", "ffn_ln_gamma", "ffn_ln_beta",
)


def _flatten_encoder(weights: ModelWeights) -> Dict[str, np.ndarray]:
    arrays: Dict[str, np.ndarray] = {
        "token_embedding": weights.token_embedding,
        "position_embedding": weights.position_embedding,
        "segment_embedding": weights.segment_embedding,
        "embedding_ln_gamma": weights.embedding_ln_gamma,
        "embedding_ln_beta": weights.embedding_ln_beta,
    }
    if weights.embedding_projection is not None:
        arrays["embedding_projection"] = weights.embedding_projection
    shared = len(weights.layers) > 1 and all(
        layer is weights.layers[0] for layer in weights.layers
    )
    layers = weights.layers[:1] if shared else weights.layers
    arrays["__shared_layers__"] = np.array(shared)
    arrays["__num_layers__"] = np.array(len(weights.layers))
    for i, layer in enumerate(layers):
        prefix = f"layers.{i}."
        for field in _ATTN_FIELDS:
            arrays[prefix + "attention." + field] = getattr(layer.attention, field)
        for field in _LAYER_FIELDS:
            arrays[prefix + field] = getattr(layer, field)
    return arrays


def save_encoder_weights(weights: ModelWeights, path: Union[str, Path]) -> None:
    """Persist encoder weights (BERT or ALBERT) to an ``.npz`` archive."""
    np.savez_compressed(str(path), **_flatten_encoder(weights))


def load_encoder_weights(path: Union[str, Path]) -> ModelWeights:
    """Load weights written by :func:`save_encoder_weights`."""
    with np.load(str(path)) as archive:
        data = {key: archive[key] for key in archive.files}
    shared = bool(data.pop("__shared_layers__"))
    num_layers = int(data.pop("__num_layers__"))
    stored = 1 if shared else num_layers
    layers = []
    for i in range(stored):
        prefix = f"layers.{i}."
        attention = AttentionWeights(
            **{f: data[prefix + "attention." + f] for f in _ATTN_FIELDS}
        )
        layers.append(
            LayerWeights(
                attention=attention,
                **{f: data[prefix + f] for f in _LAYER_FIELDS},
            )
        )
    if shared:
        layers = [layers[0]] * num_layers
    return ModelWeights(
        token_embedding=data["token_embedding"],
        position_embedding=data["position_embedding"],
        segment_embedding=data["segment_embedding"],
        embedding_ln_gamma=data["embedding_ln_gamma"],
        embedding_ln_beta=data["embedding_ln_beta"],
        layers=layers,
        embedding_projection=data.get("embedding_projection"),
    )


def save_decoder_weights(weights: DecoderWeights, path: Union[str, Path]) -> None:
    """Persist Seq2Seq decoder weights to an ``.npz`` archive."""
    arrays: Dict[str, np.ndarray] = {
        "token_embedding": weights.token_embedding,
        "position_embedding": weights.position_embedding,
        "output_projection": weights.output_projection,
        "__num_layers__": np.array(len(weights.layers)),
    }
    for i, layer in enumerate(weights.layers):
        prefix = f"layers.{i}."
        for field in _ATTN_FIELDS:
            arrays[prefix + "self_attention." + field] = getattr(
                layer.self_attention, field
            )
            arrays[prefix + "cross_attention." + field] = getattr(
                layer.cross_attention, field
            )
        for field in _DECODER_LAYER_FIELDS:
            arrays[prefix + field] = getattr(layer, field)
    np.savez_compressed(str(path), **arrays)


def load_decoder_weights(path: Union[str, Path]) -> DecoderWeights:
    """Load weights written by :func:`save_decoder_weights`."""
    with np.load(str(path)) as archive:
        data = {key: archive[key] for key in archive.files}
    num_layers = int(data.pop("__num_layers__"))
    layers = []
    for i in range(num_layers):
        prefix = f"layers.{i}."
        layers.append(
            DecoderLayerWeights(
                self_attention=AttentionWeights(
                    **{f: data[prefix + "self_attention." + f] for f in _ATTN_FIELDS}
                ),
                cross_attention=AttentionWeights(
                    **{f: data[prefix + "cross_attention." + f] for f in _ATTN_FIELDS}
                ),
                **{f: data[prefix + f] for f in _DECODER_LAYER_FIELDS},
            )
        )
    return DecoderWeights(
        token_embedding=data["token_embedding"],
        position_embedding=data["position_embedding"],
        layers=layers,
        output_projection=data["output_projection"],
    )
