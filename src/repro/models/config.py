"""Model configurations (paper Table 3).

The paper's ``hidden_size=64`` is the per-head size (the standard BERT-base
geometry: 12 heads x 64 = 768 model dim).  ``tiny()`` constructors give
shrunk configs for numeric tests where full-size NumPy forwards would be
slow.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TransformerConfig:
    """Shared hyper-parameters of an encoder or decoder stack."""

    name: str
    num_layers: int
    num_heads: int
    head_size: int
    intermediate_ratio: int = 4
    vocab_size: int = 30522
    max_position: int = 512
    type_vocab_size: int = 2
    layer_norm_eps: float = 1e-5

    def __post_init__(self) -> None:
        for field_name in ("num_layers", "num_heads", "head_size"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")
        if self.intermediate_ratio <= 0:
            raise ValueError(
                f"intermediate_ratio must be positive, got {self.intermediate_ratio}"
            )

    @property
    def hidden_size(self) -> int:
        """Model dimension: heads * per-head size."""
        return self.num_heads * self.head_size

    @property
    def intermediate_size(self) -> int:
        """Feed-forward inner dimension."""
        return self.hidden_size * self.intermediate_ratio

    def scaled(self, **overrides: object) -> "TransformerConfig":
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True)
class BertConfig(TransformerConfig):
    """BERT encoder (Table 3: 12 layers, 12 heads, head size 64)."""

    name: str = "bert"
    num_layers: int = 12
    num_heads: int = 12
    head_size: int = 64


@dataclass(frozen=True)
class AlbertConfig(TransformerConfig):
    """ALBERT: BERT geometry with cross-layer weight sharing and a
    factorized embedding (embedding_size < hidden_size)."""

    name: str = "albert"
    num_layers: int = 12
    num_heads: int = 12
    head_size: int = 64
    embedding_size: int = 128

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.embedding_size <= 0:
            raise ValueError(f"embedding_size must be positive, got {self.embedding_size}")


@dataclass(frozen=True)
class Seq2SeqConfig(TransformerConfig):
    """Transformer decoder for translation (Table 3: 6 layers, 16 heads,
    head size 64, beam 4, max target length 500)."""

    name: str = "seq2seq_decoder"
    num_layers: int = 6
    num_heads: int = 16
    head_size: int = 64
    beam_size: int = 4
    max_target_len: int = 500

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.beam_size <= 0:
            raise ValueError(f"beam_size must be positive, got {self.beam_size}")
        if self.max_target_len <= 0:
            raise ValueError(f"max_target_len must be positive, got {self.max_target_len}")


def bert_base() -> BertConfig:
    """The paper's evaluated BERT configuration."""
    return BertConfig()


def albert_base() -> AlbertConfig:
    """The paper's evaluated ALBERT configuration."""
    return AlbertConfig()


def seq2seq_decoder() -> Seq2SeqConfig:
    """The paper's evaluated Seq2Seq decoder configuration."""
    return Seq2SeqConfig()


def tiny_bert() -> BertConfig:
    """Two-layer, two-head miniature for fast numeric tests."""
    return BertConfig(
        name="bert-tiny", num_layers=2, num_heads=2, head_size=8,
        vocab_size=100, max_position=64,
    )


def tiny_albert() -> AlbertConfig:
    return AlbertConfig(
        name="albert-tiny", num_layers=2, num_heads=2, head_size=8,
        vocab_size=100, max_position=64, embedding_size=8,
    )


def tiny_seq2seq() -> Seq2SeqConfig:
    return Seq2SeqConfig(
        name="seq2seq-tiny", num_layers=2, num_heads=2, head_size=8,
        vocab_size=100, max_position=64, beam_size=2, max_target_len=16,
    )
