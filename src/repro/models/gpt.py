"""GPT-style decoder-only language model (the paper's intro cites GPT2).

Generative serving splits into two phases with very different profiles:

* **prefill** — one parallel pass over the prompt (compute-bound, like a
  BERT encoder with a causal mask);
* **decode** — one token at a time against a growing KV cache
  (bandwidth/launch-bound, like the Seq2Seq decoder without cross
  attention).

Both phases get symbolic graphs for the cost model, and the numeric side
implements greedy/temperature sampling for tests and demos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..graph import ComputationGraph, OpType, TensorKind
from ..kernels import (
    add_bias_gelu,
    layernorm_one_pass,
    linear,
    multi_head_attention,
)
from ..kernels.softmax import softmax_reference
from .config import TransformerConfig
from .weights import ModelWeights, init_encoder_weights


@dataclass(frozen=True)
class GptConfig(TransformerConfig):
    """GPT2-small-like geometry by default."""

    name: str = "gpt"
    num_layers: int = 12
    num_heads: int = 12
    head_size: int = 64
    vocab_size: int = 50257
    max_position: int = 1024


def gpt_small() -> GptConfig:
    return GptConfig()


def tiny_gpt() -> GptConfig:
    return GptConfig(name="gpt-tiny", num_layers=2, num_heads=2, head_size=8,
                     vocab_size=100, max_position=64)


BATCH = "batch"
SEQ = "seq"       # prompt length (prefill)
PAST = "past"     # KV-cache length at a decode step


def build_prefill_graph(config: GptConfig) -> ComputationGraph:
    """Parallel prompt pass: identical structure to the encoder graph
    (the causal mask changes numerics, not cost), plus the LM head."""
    from .bert import build_encoder_graph

    graph = build_encoder_graph(config)
    # Append the language-model head.  Only the final position feeds the
    # next-token logits, so gather it out of the [batch, seq, hidden]
    # encoder output before the vocab GEMM.
    graph.tensor("lm_w", (config.hidden_size, config.vocab_size),
                 TensorKind.WEIGHT)
    last = f"l{config.num_layers - 1}.output"
    graph.tensor("last_hidden", (BATCH, config.hidden_size))
    graph.add_node(
        "last_gather", OpType.TRANSPOSE,
        inputs=(last,), outputs=("last_hidden",),
        nelems=(BATCH, config.hidden_size),
    )
    graph.tensor("lm_logits", (BATCH, config.vocab_size),
                 kind=TensorKind.OUTPUT)
    graph.add_node(
        "lm_head", OpType.GEMM,
        inputs=("last_hidden", "lm_w"), outputs=("lm_logits",),
        m=(BATCH,), n=config.vocab_size, k=config.hidden_size,
    )
    graph.validate()
    return graph


def build_decode_step_graph(config: GptConfig) -> ComputationGraph:
    """One generation step against a KV cache of ``past`` tokens.

    Like the Seq2Seq decoder step minus cross attention.  Fine-grained
    nodes, so fusion and baseline comparisons behave as elsewhere.
    """
    g = ComputationGraph(name=f"{config.name}.decode")
    hidden = config.hidden_size
    heads = config.num_heads
    head_size = config.head_size
    inner = config.intermediate_size

    g.tensor("step_input", (BATCH, 1, hidden), TensorKind.INPUT)
    current = "step_input"
    for layer in range(config.num_layers):
        p = f"l{layer}"
        g.tensor(f"{p}.kcache", (BATCH, heads, PAST, head_size), TensorKind.INPUT)
        g.tensor(f"{p}.vcache", (BATCH, heads, PAST, head_size), TensorKind.INPUT)
        for proj in ("q", "k", "v"):
            g.tensor(f"{p}.w{proj}", (hidden, hidden), TensorKind.WEIGHT)
            g.tensor(f"{p}.{proj}", (BATCH, 1, hidden))
            g.add_node(
                f"{p}.{proj}_gemm", OpType.GEMM,
                inputs=(current, f"{p}.w{proj}"), outputs=(f"{p}.{proj}",),
                m=(BATCH,), n=hidden, k=hidden,
            )
            # The new token's K/V rows are appended to the cache by the
            # runtime, so they leave the graph as outputs.
            kind = (TensorKind.INTERMEDIATE if proj == "q"
                    else TensorKind.OUTPUT)
            g.tensor(f"{p}.{proj}_biased", (BATCH, 1, hidden), kind)
            g.add_node(
                f"{p}.{proj}_bias", OpType.ELEMENTWISE,
                inputs=(f"{p}.{proj}",), outputs=(f"{p}.{proj}_biased",),
                nelems=(BATCH, hidden), reads=1, writes=1, flops_per_elem=1,
            )
        g.tensor(f"{p}.q_heads", (BATCH, heads, 1, head_size))
        g.add_node(
            f"{p}.q_transpose", OpType.TRANSPOSE,
            inputs=(f"{p}.q_biased",), outputs=(f"{p}.q_heads",),
            nelems=(BATCH, hidden),
        )
        g.tensor(f"{p}.scores", (BATCH, heads, 1, PAST))
        g.add_node(
            f"{p}.scores_gemm", OpType.BATCHED_GEMM,
            inputs=(f"{p}.q_heads", f"{p}.kcache"), outputs=(f"{p}.scores",),
            m=1, n=PAST, k=head_size, batch=(BATCH, heads),
        )
        g.tensor(f"{p}.probs", (BATCH, heads, 1, PAST))
        g.add_node(
            f"{p}.softmax", OpType.SOFTMAX,
            inputs=(f"{p}.scores",), outputs=(f"{p}.probs",),
            rows=(BATCH, heads), row_len=PAST,
        )
        g.tensor(f"{p}.context", (BATCH, heads, 1, head_size))
        g.add_node(
            f"{p}.context_gemm", OpType.BATCHED_GEMM,
            inputs=(f"{p}.probs", f"{p}.vcache"), outputs=(f"{p}.context",),
            m=1, n=head_size, k=PAST, batch=(BATCH, heads),
        )
        g.tensor(f"{p}.merged", (BATCH, 1, hidden))
        g.add_node(
            f"{p}.merge", OpType.TRANSPOSE,
            inputs=(f"{p}.context",), outputs=(f"{p}.merged",),
            nelems=(BATCH, hidden),
        )
        g.tensor(f"{p}.wo", (hidden, hidden), TensorKind.WEIGHT)
        g.tensor(f"{p}.attn_out", (BATCH, 1, hidden))
        g.add_node(
            f"{p}.out_gemm", OpType.GEMM,
            inputs=(f"{p}.merged", f"{p}.wo"), outputs=(f"{p}.attn_out",),
            m=(BATCH,), n=hidden, k=hidden,
        )
        g.tensor(f"{p}.attn_residual", (BATCH, 1, hidden))
        g.add_node(
            f"{p}.attn_add", OpType.ELEMENTWISE,
            inputs=(f"{p}.attn_out", current), outputs=(f"{p}.attn_residual",),
            nelems=(BATCH, hidden), reads=2, writes=1, flops_per_elem=2,
        )
        g.tensor(f"{p}.attn_norm", (BATCH, 1, hidden))
        g.add_node(
            f"{p}.attn_ln", OpType.LAYERNORM,
            inputs=(f"{p}.attn_residual",), outputs=(f"{p}.attn_norm",),
            rows=(BATCH,), row_len=hidden,
        )
        g.tensor(f"{p}.ffn_w1", (hidden, inner), TensorKind.WEIGHT)
        g.tensor(f"{p}.ffn_inner", (BATCH, 1, inner))
        g.add_node(
            f"{p}.ffn1_gemm", OpType.GEMM,
            inputs=(f"{p}.attn_norm", f"{p}.ffn_w1"), outputs=(f"{p}.ffn_inner",),
            m=(BATCH,), n=inner, k=hidden,
        )
        g.tensor(f"{p}.ffn_act", (BATCH, 1, inner))
        g.add_node(
            f"{p}.ffn_gelu", OpType.ELEMENTWISE,
            inputs=(f"{p}.ffn_inner",), outputs=(f"{p}.ffn_act",),
            nelems=(BATCH, inner), reads=1, writes=1, flops_per_elem=12,
        )
        g.tensor(f"{p}.ffn_w2", (inner, hidden), TensorKind.WEIGHT)
        g.tensor(f"{p}.ffn_out", (BATCH, 1, hidden))
        g.add_node(
            f"{p}.ffn2_gemm", OpType.GEMM,
            inputs=(f"{p}.ffn_act", f"{p}.ffn_w2"), outputs=(f"{p}.ffn_out",),
            m=(BATCH,), n=hidden, k=inner,
        )
        g.tensor(f"{p}.ffn_residual", (BATCH, 1, hidden))
        g.add_node(
            f"{p}.ffn_add", OpType.ELEMENTWISE,
            inputs=(f"{p}.ffn_out", f"{p}.attn_norm"),
            outputs=(f"{p}.ffn_residual",),
            nelems=(BATCH, hidden), reads=2, writes=1, flops_per_elem=2,
        )
        g.tensor(f"{p}.output", (BATCH, 1, hidden))
        g.add_node(
            f"{p}.ffn_ln", OpType.LAYERNORM,
            inputs=(f"{p}.ffn_residual",), outputs=(f"{p}.output",),
            rows=(BATCH,), row_len=hidden,
        )
        current = f"{p}.output"

    g.tensor("lm_w", (hidden, config.vocab_size), TensorKind.WEIGHT)
    g.tensor("logits", (BATCH, 1, config.vocab_size), kind=TensorKind.OUTPUT)
    g.add_node(
        "lm_head", OpType.GEMM,
        inputs=(current, "lm_w"), outputs=("logits",),
        m=(BATCH,), n=config.vocab_size, k=hidden,
    )
    g.validate()
    return g


# ---------------------------------------------------------------------------
# Numeric generation (full-prefix recompute; tiny configs only).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GptWeights:
    """GPT reuses the encoder parameter layout plus an LM head."""

    encoder: ModelWeights
    lm_head: np.ndarray  # [hidden, vocab]


def init_gpt_weights(config: GptConfig, seed: int = 0) -> GptWeights:
    rng = np.random.default_rng(seed + 1000)
    return GptWeights(
        encoder=init_encoder_weights(config, seed=seed),
        lm_head=rng.normal(0, 0.02, (config.hidden_size, config.vocab_size))
        .astype(np.float32),
    )


def _causal_forward(config: GptConfig, weights: GptWeights,
                    token_ids: np.ndarray) -> np.ndarray:
    """Causally-masked forward; returns last-position logits [batch, vocab]."""
    batch, t = token_ids.shape
    enc = weights.encoder
    x = enc.token_embedding[token_ids] + enc.position_embedding[:t][None]
    x = layernorm_one_pass(x, enc.embedding_ln_gamma, enc.embedding_ln_beta)
    causal = np.triu(np.full((t, t), -1e9, dtype=np.float32), k=1)[None, None]
    for lw in enc.layers:
        attn = multi_head_attention(x, lw.attention, config.num_heads,
                                    mask=causal, fused=True)
        x = layernorm_one_pass(attn + x, lw.attn_ln_gamma, lw.attn_ln_beta)
        inner = linear(x, lw.ffn_w1)
        inner = add_bias_gelu(inner, lw.ffn_b1, out=inner)
        x = layernorm_one_pass(linear(inner, lw.ffn_w2, lw.ffn_b2) + x,
                               lw.ffn_ln_gamma, lw.ffn_ln_beta)
    return linear(x[:, -1, :], weights.lm_head)


def generate(
    config: GptConfig,
    weights: GptWeights,
    prompt_ids: np.ndarray,
    max_new_tokens: int,
    temperature: float = 0.0,
    seed: int = 0,
    eos_id: Optional[int] = None,
) -> List[int]:
    """Autoregressive generation: greedy at temperature 0, else sampling."""
    prompt_ids = np.asarray(prompt_ids)
    if prompt_ids.ndim != 1 or prompt_ids.size == 0:
        raise ValueError(f"prompt_ids must be a non-empty 1-D array, got "
                         f"{prompt_ids.shape}")
    if max_new_tokens <= 0:
        raise ValueError(f"max_new_tokens must be positive, got {max_new_tokens}")
    if temperature < 0:
        raise ValueError(f"temperature must be >= 0, got {temperature}")
    rng = np.random.default_rng(seed)
    tokens = prompt_ids.tolist()
    limit = config.max_position - 1
    for _ in range(max_new_tokens):
        if len(tokens) > limit:
            break
        logits = _causal_forward(
            config, weights, np.asarray([tokens], dtype=np.int64)
        )[0].astype(np.float64)
        if temperature == 0.0:
            token = int(np.argmax(logits))
        else:
            probs = softmax_reference(logits / temperature)
            token = int(rng.choice(len(probs), p=probs / probs.sum()))
        tokens.append(token)
        if eos_id is not None and token == eos_id:
            break
    return tokens[prompt_ids.size:]
