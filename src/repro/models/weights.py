"""Deterministic random weight initialization.

The paper serves pre-trained checkpoints; serving *performance* is
independent of the weight values, so the reproduction initializes weights
from a seeded generator (truncated-normal-ish scaling as in BERT) and the
correctness tests compare fused-vs-reference numerics on those weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..kernels.attention import AttentionWeights
from .config import AlbertConfig, Seq2SeqConfig, TransformerConfig


@dataclass(frozen=True)
class LayerWeights:
    """Parameters of one transformer layer (attention + FFN + two LNs)."""

    attention: AttentionWeights
    attn_ln_gamma: np.ndarray
    attn_ln_beta: np.ndarray
    ffn_w1: np.ndarray
    ffn_b1: np.ndarray
    ffn_w2: np.ndarray
    ffn_b2: np.ndarray
    ffn_ln_gamma: np.ndarray
    ffn_ln_beta: np.ndarray


@dataclass(frozen=True)
class DecoderLayerWeights:
    """One decoder layer: self-attention, cross-attention, FFN."""

    self_attention: AttentionWeights
    self_ln_gamma: np.ndarray
    self_ln_beta: np.ndarray
    cross_attention: AttentionWeights
    cross_ln_gamma: np.ndarray
    cross_ln_beta: np.ndarray
    ffn_w1: np.ndarray
    ffn_b1: np.ndarray
    ffn_w2: np.ndarray
    ffn_b2: np.ndarray
    ffn_ln_gamma: np.ndarray
    ffn_ln_beta: np.ndarray


@dataclass(frozen=True)
class ModelWeights:
    """Full parameter set of an encoder-style model."""

    token_embedding: np.ndarray
    position_embedding: np.ndarray
    segment_embedding: np.ndarray
    embedding_ln_gamma: np.ndarray
    embedding_ln_beta: np.ndarray
    layers: List[LayerWeights]
    embedding_projection: np.ndarray | None = None  # ALBERT factorization

    @property
    def parameter_bytes(self) -> int:
        """Total FP32 parameter bytes (the 440 MB figure of §4.2 for BERT)."""
        total = 0
        seen: set = set()
        for arr in _iter_arrays(self):
            if id(arr) in seen:  # shared layers (ALBERT) counted once
                continue
            seen.add(id(arr))
            total += arr.nbytes
        return total


def _iter_arrays(obj: object):
    if isinstance(obj, np.ndarray):
        yield obj
    elif isinstance(obj, (list, tuple)):
        for item in obj:
            yield from _iter_arrays(item)
    elif hasattr(obj, "__dataclass_fields__"):
        for name in obj.__dataclass_fields__:
            yield from _iter_arrays(getattr(obj, name))


def _normal(rng: np.random.Generator, *shape: int, std: float = 0.02) -> np.ndarray:
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def _attention_weights(rng: np.random.Generator, hidden: int) -> AttentionWeights:
    return AttentionWeights(
        wq=_normal(rng, hidden, hidden), bq=_normal(rng, hidden),
        wk=_normal(rng, hidden, hidden), bk=_normal(rng, hidden),
        wv=_normal(rng, hidden, hidden), bv=_normal(rng, hidden),
        wo=_normal(rng, hidden, hidden), bo=_normal(rng, hidden),
    )


def _layer_weights(rng: np.random.Generator, config: TransformerConfig) -> LayerWeights:
    hidden, inner = config.hidden_size, config.intermediate_size
    return LayerWeights(
        attention=_attention_weights(rng, hidden),
        attn_ln_gamma=np.ones(hidden, dtype=np.float32),
        attn_ln_beta=np.zeros(hidden, dtype=np.float32),
        ffn_w1=_normal(rng, hidden, inner),
        ffn_b1=_normal(rng, inner),
        ffn_w2=_normal(rng, inner, hidden),
        ffn_b2=_normal(rng, hidden),
        ffn_ln_gamma=np.ones(hidden, dtype=np.float32),
        ffn_ln_beta=np.zeros(hidden, dtype=np.float32),
    )


def init_encoder_weights(
    config: TransformerConfig, seed: int = 0
) -> ModelWeights:
    """BERT-style weights; ALBERT configs share one layer across the stack
    and factorize the embedding through ``embedding_projection``."""
    rng = np.random.default_rng(seed)
    hidden = config.hidden_size
    is_albert = isinstance(config, AlbertConfig)
    embed_dim = config.embedding_size if is_albert else hidden
    token = _normal(rng, config.vocab_size, embed_dim)
    position = _normal(rng, config.max_position, embed_dim)
    segment = _normal(rng, config.type_vocab_size, embed_dim)
    projection = _normal(rng, embed_dim, hidden) if is_albert else None
    if is_albert:
        shared = _layer_weights(rng, config)
        layers = [shared] * config.num_layers  # the same object: shared weights
    else:
        layers = [_layer_weights(rng, config) for _ in range(config.num_layers)]
    return ModelWeights(
        token_embedding=token,
        position_embedding=position,
        segment_embedding=segment,
        embedding_ln_gamma=np.ones(embed_dim, dtype=np.float32),
        embedding_ln_beta=np.zeros(embed_dim, dtype=np.float32),
        layers=layers,
        embedding_projection=projection,
    )


@dataclass(frozen=True)
class DecoderWeights:
    """Parameters of the Seq2Seq decoder stack plus output projection."""

    token_embedding: np.ndarray
    position_embedding: np.ndarray
    layers: List[DecoderLayerWeights]
    output_projection: np.ndarray  # [hidden, vocab]


def init_decoder_weights(config: Seq2SeqConfig, seed: int = 0) -> DecoderWeights:
    rng = np.random.default_rng(seed)
    hidden, inner = config.hidden_size, config.intermediate_size
    layers = []
    for _ in range(config.num_layers):
        layers.append(
            DecoderLayerWeights(
                self_attention=_attention_weights(rng, hidden),
                self_ln_gamma=np.ones(hidden, dtype=np.float32),
                self_ln_beta=np.zeros(hidden, dtype=np.float32),
                cross_attention=_attention_weights(rng, hidden),
                cross_ln_gamma=np.ones(hidden, dtype=np.float32),
                cross_ln_beta=np.zeros(hidden, dtype=np.float32),
                ffn_w1=_normal(rng, hidden, inner),
                ffn_b1=_normal(rng, inner),
                ffn_w2=_normal(rng, inner, hidden),
                ffn_b2=_normal(rng, hidden),
                ffn_ln_gamma=np.ones(hidden, dtype=np.float32),
                ffn_ln_beta=np.zeros(hidden, dtype=np.float32),
            )
        )
    return DecoderWeights(
        token_embedding=_normal(rng, config.vocab_size, hidden),
        position_embedding=_normal(rng, config.max_position, hidden),
        layers=layers,
        output_projection=_normal(rng, hidden, config.vocab_size),
    )
