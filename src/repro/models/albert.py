"""ALBERT: BERT geometry with cross-layer parameter sharing.

Structurally the graph equals BERT's (the builder in :mod:`.bert` registers
shared weight tensors once); the differences that matter to a *serving*
system are (a) the factorized embedding adds one projection GEMM and (b)
the parameter footprint is ~1/12th, which the memory experiments can
observe through :attr:`ModelWeights.parameter_bytes`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph import ComputationGraph
from .bert import build_encoder_graph, encoder_forward
from .config import AlbertConfig
from .weights import ModelWeights, init_encoder_weights


def build_albert_graph(config: Optional[AlbertConfig] = None) -> ComputationGraph:
    """ALBERT encoder graph (shared weights, factorized embedding)."""
    return build_encoder_graph(config or AlbertConfig())


def albert_forward(
    config: AlbertConfig,
    weights: ModelWeights,
    token_ids: np.ndarray,
    lengths: Optional[np.ndarray] = None,
    fused: bool = True,
) -> np.ndarray:
    """Numeric ALBERT forward; see :func:`repro.models.bert.encoder_forward`."""
    if weights.embedding_projection is None:
        raise ValueError("ALBERT weights require an embedding projection")
    return encoder_forward(config, weights, token_ids, lengths=lengths, fused=fused)


def init_albert_weights(config: Optional[AlbertConfig] = None, seed: int = 0) -> ModelWeights:
    return init_encoder_weights(config or AlbertConfig(), seed=seed)
