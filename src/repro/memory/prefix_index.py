"""Radix-tree prefix index over page-aligned KV cache content.

Multi-tenant serving traffic shares long prompt prefixes — system prompts
and few-shot templates reused across millions of requests — so at high
arrival rates most prefill FLOPs recompute KV state the arena already
holds.  :class:`RadixPrefixIndex` maps the longest *cached* prefix of an
incoming prompt's token ids to resident :class:`~repro.memory.kv_arena.KVPage`
handles, so admission can attach those pages by refcount and run prefill
only over the uncached suffix.

Structure: one trie node per KV **page** (``page_tokens`` token ids), not
per token — a radix tree with fixed-width edges.  A prompt's cacheable
prefix is its page-aligned head; lookup walks child edges keyed by the
page's token-id tuple, so two prompts share a node exactly when they
agree on that page's whole content *and* everything before it (the path).
Page content is therefore content-addressed by construction: the path to
a node spells out the tokens its page holds.

Lifetime contract with the arena:

* Every indexed page carries one index reference
  (:meth:`KVCacheArena.index_ref`), so a completed request's
  :meth:`~repro.memory.kv_arena.KVCacheArena.release` keeps the page
  resident for future hits.
* Pages also referenced by a live region are **pinned** — eviction skips
  them; only unpinned *leaves* are evictable, and the LRU walk cascades
  upward as parents become leaves.
* The arena calls :meth:`reclaim` from its page allocator when residency
  would overflow capacity, making index-only pages a best-effort cache
  that never blocks admission (both admission gates exclude them).

Everything is deterministic: the LRU clock is a logical counter bumped
per lookup/insert, and eviction ties break on ``page_id``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .kv_arena import KVArenaError, KVCacheArena, KVPage


class _Node:
    """One cached page: edge key is the page's token-id tuple."""

    __slots__ = ("key", "page", "parent", "children", "last_used")

    def __init__(self, key: Tuple[int, ...], page: KVPage,
                 parent: Optional["_Node"]) -> None:
        self.key = key
        self.page = page
        self.parent = parent
        self.children: Dict[Tuple[int, ...], "_Node"] = {}
        self.last_used = 0


class RadixPrefixIndex:
    """Longest-cached-prefix lookup over page-aligned token sequences.

    Attaches itself to ``arena`` as its reclaimer: under memory pressure
    the arena evicts unpinned leaf pages in LRU order until the needed
    room is free.
    """

    def __init__(self, arena: KVCacheArena) -> None:
        self.arena = arena
        self.page_tokens = arena.page_tokens
        arena.attach_index(self)
        self._root_children: Dict[Tuple[int, ...], _Node] = {}
        self._nodes: List[_Node] = []  # insertion order, for iteration
        self._clock = 0
        self.lookups = 0
        self.hits = 0
        self.inserts = 0
        self.pages_inserted = 0
        self.pages_evicted = 0
        self.tokens_matched = 0

    def __len__(self) -> int:
        return len(self._nodes)

    def _page_keys(self, ids: Sequence[int],
                   limit_pages: int) -> List[Tuple[int, ...]]:
        P = self.page_tokens
        return [tuple(ids[i * P:(i + 1) * P]) for i in range(limit_pages)]

    # -- lookup ---------------------------------------------------------------

    def lookup(self, ids: Sequence[int]) -> Tuple[int, List[KVPage]]:
        """Longest cached prefix of ``ids``: ``(matched_tokens, pages)``.

        Matches whole pages only, and never the entire prompt — at least
        one token is always left for prefill (the model must still run to
        produce the first output token), so the match is capped at
        ``(len(ids) - 1) // page_tokens`` pages.  Touching a path bumps
        its LRU clock.
        """
        self.lookups += 1
        limit = max(0, (len(ids) - 1) // self.page_tokens)
        self._clock += 1
        node: Optional[_Node] = None
        pages: List[KVPage] = []
        children = self._root_children
        for key in self._page_keys(ids, limit):
            child = children.get(key)
            if child is None:
                break
            child.last_used = self._clock
            pages.append(child.page)
            node = child
            children = child.children
        matched = len(pages) * self.page_tokens
        if pages:
            self.hits += 1
            self.tokens_matched += matched
        return matched, pages

    # -- insert ---------------------------------------------------------------

    def insert(self, ids: Sequence[int], pages: Sequence[KVPage]) -> int:
        """Publish a region's prompt pages under their token-id path.

        ``pages[i]`` must hold the KV state for ``ids[i*P:(i+1)*P]`` and
        be fully written (callers pass only the page-aligned prompt
        head).  Existing nodes win — a second publisher of the same
        content just refreshes the LRU clock, so concurrent requests
        converge on one physical page per distinct prefix.  Returns the
        number of pages newly indexed.
        """
        P = self.page_tokens
        if len(ids) < len(pages) * P:
            raise KVArenaError(
                f"insert of {len(pages)} pages needs {len(pages) * P} "
                f"token ids, got {len(ids)}"
            )
        self.inserts += 1
        self._clock += 1
        added = 0
        parent: Optional[_Node] = None
        children = self._root_children
        for key, page in zip(self._page_keys(ids, len(pages)), pages):
            node = children.get(key)
            if node is None:
                self.arena.index_ref(page)
                node = _Node(key, page, parent)
                children[key] = node
                self._nodes.append(node)
                added += 1
            node.last_used = self._clock
            parent = node
            children = node.children
        self.pages_inserted += added
        return added

    # -- eviction -------------------------------------------------------------

    def _evictable(self, node: _Node) -> bool:
        # Unpinned (index holds the only reference) and a leaf: interior
        # pages stay until their subtree drains, keeping the cached set
        # prefix-closed.
        return not node.children and node.page.refcount == 1

    def _evict(self, node: _Node) -> None:
        siblings = (node.parent.children if node.parent is not None
                    else self._root_children)
        del siblings[node.key]
        self._nodes.remove(node)
        self.pages_evicted += 1
        self.arena.index_unref(node.page)

    def reclaim(self, tokens_needed: int) -> int:
        """Evict LRU unpinned leaves until ``tokens_needed`` tokens of
        page room are free (or no candidate remains).  Cascades upward:
        evicting a leaf can expose its parent.  Returns tokens freed."""
        freed = 0
        while freed < tokens_needed:
            victim: Optional[_Node] = None
            for node in self._nodes:
                if not self._evictable(node):
                    continue
                if victim is None or (node.last_used, node.page.page_id) \
                        < (victim.last_used, victim.page.page_id):
                    victim = node
            if victim is None:
                break
            freed += victim.page.tokens
            self._evict(victim)
        return freed

    def clear(self) -> int:
        """Drop every unpinned cached page (full eviction sweep)."""
        return self.reclaim(len(self._nodes) * self.page_tokens or 1)

    # -- introspection --------------------------------------------------------

    def resident_pages(self) -> List[KVPage]:
        """Every page the index currently references (refcount audit)."""
        return [node.page for node in self._nodes]

    def stats(self) -> Dict[str, int]:
        """Deterministic counters (read by bench and the sanitizer)."""
        return {
            "nodes": len(self._nodes),
            "lookups": self.lookups,
            "hits": self.hits,
            "inserts": self.inserts,
            "pages_inserted": self.pages_inserted,
            "pages_evicted": self.pages_evicted,
            "tokens_matched": self.tokens_matched,
        }
