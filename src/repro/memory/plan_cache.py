"""Sequence-length-aware allocation-plan cache (host fast path, paper §4.2).

Algorithm 1 re-plans every request, but its placement is a *pure function*
of (the ordered chunk list with sizes, the request's usage records): the
plan starts by clearing every chunk, the gap search reads only sizes,
offsets and lifetimes, and release bookkeeping happens after placement.
A long-running server sees the same (shape, chunk-state) pair over and
over — so the outcome can be cached and replayed instead of re-running the
O(n²) gap search.

:class:`PlanCache` keys entries by ``(records signature, chunk
fingerprint)``.  Every plan's outcome is stored under its *post-release*
chunk state: planning is idempotent — freshly malloc'ed chunks land at the
end of the list and are reached only when every earlier chunk fails, so a
fresh plan of the same records from the post-plan state reproduces the
same placements with zero mallocs.  The warm re-plan that follows every
cold plan is therefore always a hit.  Replay
restores the cached per-chunk assignments (sharing the frozen
:class:`~repro.memory.chunk.ChunkAssignment` objects) and the caller then
runs release bookkeeping *live* — unused-streak state is deliberately
excluded from the fingerprint because placement never reads it, and
running it live keeps chunk-release timing (and its ``cudaFree`` stalls)
bit-identical to the uncached allocator.

The cache is transparent by default: counters, stalls, placements, and the
emitted :class:`~repro.memory.plan.AllocationPlan` are exactly what the
uncached path would have produced.  The *host-cost* saving is modeled at
the runtime layer (see ``InferenceRuntime``'s ``plan_cache_host_cost``),
which can charge a cache hit ``EAGER_ALLOC_HOST_S``-class time instead of
the quadratic planning cost.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from .chunk import Chunk, ChunkAssignment
from .plan import AllocationPlan
from .records import TensorUsageRecord

#: (name, first_op, last_op, size) per record, in sequence order.
RecordsSignature = Tuple[Tuple[str, int, int, int], ...]

#: (chunk_id, size) per cached chunk, in allocator list order.
ChunkFingerprint = Tuple[Tuple[int, int], ...]

PlanKey = Tuple[RecordsSignature, ChunkFingerprint]

#: Default maximum number of cached plans per allocator (LRU-evicted).
DEFAULT_CAPACITY = 256


def records_signature(records: Sequence[TensorUsageRecord]) -> RecordsSignature:
    """Hashable identity of a request's usage records."""
    return tuple((r.name, r.first_op, r.last_op, r.size) for r in records)


def chunk_fingerprint(chunks: Sequence[Chunk]) -> ChunkFingerprint:
    """Hashable identity of the chunk state placement depends on."""
    return tuple((c.chunk_id, c.size) for c in chunks)


@dataclass(frozen=True)
class CachedPlan:
    """Replayable outcome of one planning round (post-release state)."""

    #: chunk_id -> offset-sorted assignments (possibly empty per chunk).
    assignments: Dict[int, Tuple[ChunkAssignment, ...]]
    #: The emitted plan; safe to share, plans are never mutated.
    plan: AllocationPlan
    #: Gap-search hits to replay onto the allocator's counters.
    hits: int


class PlanCache:
    """LRU cache of :class:`CachedPlan` keyed by (records, chunk state).

    ``capacity`` bounds the entry count (None = unbounded).  ``hits`` /
    ``misses`` / ``stores`` / ``invalidations`` count cache events; the
    owning allocator mirrors them into a
    :class:`~repro.observability.MetricsRegistry` when one is attached.
    """

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[PlanKey, CachedPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, records: Sequence[TensorUsageRecord],
            chunks: Sequence[Chunk]) -> PlanKey:
        return records_signature(records), chunk_fingerprint(chunks)

    def get(self, key: PlanKey) -> Optional[CachedPlan]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key: PlanKey, entry: CachedPlan) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self.stores += 1
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate(self) -> int:
        """Drop every entry (graph or allocator config changed); returns count."""
        dropped = len(self._entries)
        self._entries.clear()
        self.invalidations += 1
        return dropped

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
        }
