"""Workload driver and summary statistics for allocator comparisons (Fig. 7)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .base import BaseAllocator, RequestAllocation
from .records import TensorUsageRecord

MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class AllocatorWorkloadResult:
    """Aggregate view of one allocator over a request stream."""

    allocator_name: str
    per_request: List[RequestAllocation]

    @property
    def num_requests(self) -> int:
        return len(self.per_request)

    @property
    def footprint_timeline_mb(self) -> List[float]:
        return [r.footprint_mb for r in self.per_request]

    @property
    def max_footprint_mb(self) -> float:
        """High-water device memory across the stream (per-request peaks)."""
        return max((r.peak_mb for r in self.per_request), default=0.0)

    @property
    def avg_new_mb_per_request(self) -> float:
        """The paper's Fig. 7 headline metric (0.70 MB Turbo vs 2.78 MB GSOC)."""
        if not self.per_request:
            return 0.0
        return sum(r.new_bytes for r in self.per_request) / len(self.per_request) / MB

    @property
    def total_stall_s(self) -> float:
        return sum(r.stall_s for r in self.per_request)

    @property
    def allocation_events(self) -> int:
        """Requests that needed at least one fresh cudaMalloc."""
        return sum(1 for r in self.per_request if r.new_bytes > 0)


def run_allocator_workload(
    allocator: BaseAllocator,
    request_records: Sequence[Sequence[TensorUsageRecord]],
) -> AllocatorWorkloadResult:
    """Feed a sequence of requests (each a record list) to ``allocator``."""
    per_request = [allocator.process_request(records) for records in request_records]
    return AllocatorWorkloadResult(
        allocator_name=allocator.name, per_request=per_request
    )
