"""Memory management: the paper's allocator (Alg. 1+2) and its baselines."""

from .base import BaseAllocator, RequestAllocation
from .caching import CachingAllocator, round_block_size
from .chunk import DEFAULT_CHUNK_SIZE, K_SCALE, Chunk, ChunkAssignment, new_chunk_size
from .gsoc import GsocAllocator, gsoc_offsets
from .kv_arena import (
    KVArenaError,
    KVCacheArena,
    KVPage,
    KVRegion,
    kv_bytes_per_token,
)
from .naive import NaiveAllocator
from .plan import AllocationPlan, Placement, PlanError, plan_from_chunks, validate_plan
from .prefix_index import RadixPrefixIndex
from .plan_cache import (
    CachedPlan,
    PlanCache,
    chunk_fingerprint,
    records_signature,
)
from .records import TensorUsageRecord, peak_live_bytes, sort_by_size
from .stats import MB, AllocatorWorkloadResult, run_allocator_workload
from .turbo import TurboAllocator

__all__ = [
    "TensorUsageRecord",
    "sort_by_size",
    "peak_live_bytes",
    "Chunk",
    "ChunkAssignment",
    "DEFAULT_CHUNK_SIZE",
    "K_SCALE",
    "new_chunk_size",
    "AllocationPlan",
    "Placement",
    "PlanError",
    "validate_plan",
    "plan_from_chunks",
    "BaseAllocator",
    "RequestAllocation",
    "PlanCache",
    "CachedPlan",
    "records_signature",
    "chunk_fingerprint",
    "TurboAllocator",
    "KVCacheArena",
    "KVPage",
    "KVRegion",
    "KVArenaError",
    "kv_bytes_per_token",
    "RadixPrefixIndex",
    "GsocAllocator",
    "gsoc_offsets",
    "CachingAllocator",
    "round_block_size",
    "NaiveAllocator",
    "MB",
    "AllocatorWorkloadResult",
    "run_allocator_workload",
]
