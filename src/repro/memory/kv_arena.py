"""KV-cache arena for generative serving (iteration-level batching).

Decoder-only generation keeps a per-request key/value cache that grows by
one position per generated token and dies only when the request completes.
That lifetime shape is the opposite of the per-request intermediate
tensors Algorithm 1 was designed for — regions persist *across* many
decode steps — yet the same chunked machinery applies: the arena holds one
:class:`~repro.memory.turbo.TurboAllocator` whose chunks back every live
request's KV region, and every membership or size change re-runs the
paper's length-aware planning (Alg. 1) over the live regions, so layout
quality and chunk reuse come from the exact code path the BERT serving
stack uses (including its plan cache: a steady-state decode batch replans
only when membership changes, and repeated shapes replay cached plans).

Capacity model (what bounds the decode batch instead of ``max_batch``):

* KV state lives in **pages** of ``page_tokens`` tokens.  A
  :class:`KVRegion` holds an ordered list of :class:`KVPage` handles;
  page ``i`` backs token positions ``[i*P, (i+1)*P)``.  Pages carry a
  **refcount**: prefix caching and :meth:`fork` let several regions (and
  the :class:`~repro.memory.prefix_index.RadixPrefixIndex`) reference one
  physical page, and :meth:`release` frees only pages whose refcount hits
  zero.
* Shared pages are **counted once** everywhere: ``used_bytes`` is the
  bytes of distinct resident pages, and both admission gates charge a
  newcomer only for the pages it does not share.
* Admission is gated by a **high-watermark**: a request is admitted only
  while the arena's *committed* bytes (resident pages minus the
  reclaimable index-only ones, plus the newcomer's private reservation)
  stay under ``high_watermark * capacity_bytes``.
* Overflow is impossible by construction: admission also requires that
  committed bytes plus every live region's remaining growth budget fit
  ``capacity_bytes``.  Pages held only by the prefix index are excluded
  from that bound because they are reclaimed on demand (LRU leaf
  eviction) the moment an allocation needs the room — growth therefore
  never fails after admission.

Copy-on-write note: generation KV is append-only — a region only ever
*writes* the page holding its next position.  ``fork()`` therefore shares
the parent's fully-written (immutable) pages by refcount and copies the
one mutable partial tail page eagerly; the lazy-copy machinery a
random-write allocator needs would buy at most one page per fork here
while making the no-overflow accounting probabilistic.

``verify()`` runs the repo's memory-plan verifier
(:func:`repro.analysis.memory_checks.check_plan`) over the arena's latest
plan plus the page-refcount conservation audit behind the MEM224
diagnostic; ``python -m repro check`` drives a scripted arena episode
through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..gpusim.memory import DeviceMemory
from .chunk import DEFAULT_CHUNK_SIZE
from .plan import AllocationPlan
from .records import TensorUsageRecord
from .turbo import TurboAllocator


class KVArenaError(RuntimeError):
    """An arena invariant was violated (unknown request, capacity breach)."""


#: Observers notified after every successful arena mutation, as
#: ``hook(arena, op, req_id, tokens)`` with ``op`` one of ``admit`` /
#: ``append`` / ``release`` / ``preempt`` / ``restore`` and ``tokens``
#: the operation's token delta (region size for release/preempt).  The
#: engine-trace sanitizer's conservation ledger attaches here; the list
#: is empty — a no-op — in normal runs.
_arena_hooks: List[Callable[["KVCacheArena", str, int, int], None]] = []


def _notify(arena: "KVCacheArena", op: str, req_id: int, tokens: int) -> None:
    for hook in list(_arena_hooks):
        hook(arena, op, req_id, tokens)


def kv_bytes_per_token(num_layers: int, num_heads: int, head_size: int,
                       dtype_bytes: int = 4) -> int:
    """Bytes of K+V cache one token occupies across all layers."""
    if min(num_layers, num_heads, head_size, dtype_bytes) <= 0:
        raise ValueError("all KV geometry factors must be positive")
    return 2 * num_layers * num_heads * head_size * dtype_bytes


@dataclass
class KVPage:
    """One physical KV page: ``tokens`` positions, shared by refcount.

    ``refcount`` is the number of :class:`KVRegion` references plus one
    if the prefix index holds the page (``in_index``).  The MEM224
    conservation audit recomputes both from the ground truth and flags
    any divergence.
    """

    page_id: int
    tokens: int
    refcount: int = 0
    in_index: bool = False


@dataclass
class KVRegion:
    """One live request's KV cache: length, budget and its page handles.

    ``pages[i]`` backs token positions ``[i*P, (i+1)*P)``; the first
    ``shared_tokens / P`` pages are an immutable shared prefix (attached
    from the prefix index or a :meth:`KVCacheArena.fork` parent) that
    this region never writes.
    """

    req_id: int
    tokens: int             # KV positions written so far (prompt + generated)
    worst_case_tokens: int  # page-rounded bound the region may grow to
    pages: List[KVPage] = field(default_factory=list)
    shared_tokens: int = 0  # immutable shared prefix (page-aligned)

    @property
    def reserved_tokens(self) -> int:
        """Page-rounded footprint this region references (shared + private)."""
        return sum(p.tokens for p in self.pages)


class KVCacheArena:
    """Simulated KV-cache memory for a continuously-batched decode loop.

    Parameters
    ----------
    capacity_bytes:
        Total simulated device memory set aside for KV caches.
    bytes_per_token:
        Per-token KV footprint (see :func:`kv_bytes_per_token`).
    page_tokens:
        Reservation granularity; regions grow a page at a time, so the
        length-aware re-plan runs once per page, not once per token.
    high_watermark:
        Admission gate as a fraction of capacity; the remainder is growth
        headroom.
    device_memory / chunk_size / release_after / plan_cache-behaviour:
        Forwarded to the backing :class:`TurboAllocator`; chunks released
        after sitting unused keep malloc churn in check exactly as in the
        encoder serving path.
    metrics:
        Optional :class:`repro.observability.MetricsRegistry`; publishes
        admission/denial/release/replan counters and a used-bytes gauge.
    """

    def __init__(
        self,
        capacity_bytes: int,
        bytes_per_token: int,
        page_tokens: int = 16,
        high_watermark: float = 0.9,
        device_memory: Optional[DeviceMemory] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        release_after: Optional[int] = 4,
        metrics=None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        if bytes_per_token <= 0:
            raise ValueError(f"bytes_per_token must be positive, got {bytes_per_token}")
        if page_tokens <= 0:
            raise ValueError(f"page_tokens must be positive, got {page_tokens}")
        if not 0.0 < high_watermark <= 1.0:
            raise ValueError(
                f"high_watermark must be in (0, 1], got {high_watermark}"
            )
        self.capacity_bytes = capacity_bytes
        self.bytes_per_token = bytes_per_token
        self.page_tokens = page_tokens
        self.high_watermark = high_watermark
        self.metrics = metrics
        self._allocator = TurboAllocator(
            device_memory if device_memory is not None else DeviceMemory(),
            chunk_size=chunk_size,
            release_after=release_after,
        )
        self._regions: Dict[int, KVRegion] = {}  # insertion-ordered
        self._pages: Dict[int, KVPage] = {}      # resident, allocation order
        self._next_page_id = 0
        self._index = None  # attached RadixPrefixIndex (reclaim callback)
        # Incremental token counters (the O(1) accounting behind the
        # per-admission gates; ``verify()`` recomputes them from the
        # ground truth and flags drift):
        self._resident_tokens = 0     # distinct resident page tokens
        self._growth_tokens = 0       # sum of worst_case - reserved (regions)
        self._reclaimable_tokens = 0  # pages held only by the prefix index
        self.last_plan: Optional[AllocationPlan] = None
        self.last_records: List[TensorUsageRecord] = []
        self.admissions = 0
        self.denials = 0
        self.releases = 0
        self.replans = 0
        self.preemptions = 0
        self.restores = 0
        self.forks = 0
        self.pages_reclaimed = 0
        self.shared_tokens_attached = 0
        self.peak_used_bytes = 0

    # -- capacity accounting --------------------------------------------------

    @property
    def watermark_bytes(self) -> int:
        """Admission threshold in bytes."""
        return int(self.capacity_bytes * self.high_watermark)

    @property
    def used_bytes(self) -> int:
        """Bytes of distinct resident pages (shared pages counted once)."""
        return self._resident_tokens * self.bytes_per_token

    @property
    def reclaimable_bytes(self) -> int:
        """Bytes of pages held only by the prefix index (evictable on
        demand — excluded from both admission gates)."""
        return self._reclaimable_tokens * self.bytes_per_token

    @property
    def committed_bytes(self) -> int:
        """Resident bytes the arena cannot reclaim (region-referenced)."""
        return (self._resident_tokens - self._reclaimable_tokens) \
            * self.bytes_per_token

    @property
    def worst_case_bytes(self) -> int:
        """Bytes the live regions could grow to (the no-overflow bound):
        committed residency plus every region's remaining growth budget.
        Shared pages are counted once; index-only pages not at all (they
        are reclaimed before growth could ever need their room)."""
        return (self._resident_tokens - self._reclaimable_tokens
                + self._growth_tokens) * self.bytes_per_token

    @property
    def live_requests(self) -> int:
        return len(self._regions)

    def _pages_tokens(self, tokens: int) -> int:
        """Round a token count up to whole pages."""
        pages = -(-tokens // self.page_tokens)
        return pages * self.page_tokens

    # Kept under the historical name: tests and callers use it.
    _pages_of = _pages_tokens

    def _pages_count(self, tokens: int) -> int:
        return -(-tokens // self.page_tokens)

    def region_of(self, req_id: int) -> KVRegion:
        try:
            return self._regions[req_id]
        except KeyError:
            raise KVArenaError(f"request {req_id} has no KV region") from None

    # -- page lifecycle -------------------------------------------------------

    def attach_index(self, index) -> None:
        """Register the prefix index as the arena's page reclaimer."""
        if self._index is not None and self._index is not index:
            raise KVArenaError("arena already has a prefix index attached")
        self._index = index

    def _reclaimable(self, page: KVPage) -> bool:
        return page.in_index and page.refcount == 1

    def _ref(self, page: KVPage, *, index: bool = False) -> None:
        was = self._reclaimable(page)
        if index:
            if page.in_index:
                raise KVArenaError(
                    f"page {page.page_id} is already index-referenced"
                )
            page.in_index = True
        page.refcount += 1
        now = self._reclaimable(page)
        if was != now:
            self._reclaimable_tokens += page.tokens if now else -page.tokens

    def _unref(self, page: KVPage, *, index: bool = False) -> None:
        if page.refcount <= 0 or page.page_id not in self._pages:
            raise KVArenaError(
                f"page {page.page_id} released below a zero refcount"
            )
        was = self._reclaimable(page)
        if index:
            if not page.in_index:
                raise KVArenaError(
                    f"page {page.page_id} is not index-referenced"
                )
            page.in_index = False
        page.refcount -= 1
        now = self._reclaimable(page)
        if was != now:
            self._reclaimable_tokens += page.tokens if now else -page.tokens
        if page.refcount == 0:
            del self._pages[page.page_id]
            self._resident_tokens -= page.tokens

    def index_ref(self, page: KVPage) -> None:
        """The prefix index takes a reference on a resident page."""
        if page.page_id not in self._pages:
            raise KVArenaError(
                f"page {page.page_id} is not resident in this arena"
            )
        self._ref(page, index=True)

    def index_unref(self, page: KVPage) -> None:
        """The prefix index drops its reference (eviction); frees the page
        if nothing else holds it."""
        self._unref(page, index=True)

    def _alloc_page(self) -> KVPage:
        """Allocate one private page, reclaiming index-only pages if the
        arena is at capacity (the admission gates guarantee the regions
        alone always fit, so reclaim can never come up short)."""
        page_bytes = self.page_tokens * self.bytes_per_token
        if (self._resident_tokens * self.bytes_per_token + page_bytes
                > self.capacity_bytes):
            needed = (self._resident_tokens * self.bytes_per_token
                      + page_bytes - self.capacity_bytes)
            if self._index is not None:
                freed = self._index.reclaim(-(-needed // self.bytes_per_token))
                self.pages_reclaimed += freed // self.page_tokens
        if (self._resident_tokens + self.page_tokens) * self.bytes_per_token \
                > self.capacity_bytes:  # pragma: no cover - gate invariant
            raise KVArenaError(
                "KV arena overflow — admission invariant violated"
            )
        page = KVPage(page_id=self._next_page_id, tokens=self.page_tokens,
                      refcount=1)
        self._next_page_id += 1
        self._pages[page.page_id] = page
        self._resident_tokens += page.tokens
        return page

    def _validated_shared(self, shared_pages: Sequence[KVPage],
                          tokens: int) -> int:
        """Token span of an attached shared prefix (must be resident and
        no longer than the page-rounded region)."""
        shared = 0
        for page in shared_pages:
            if self._pages.get(page.page_id) is not page:
                raise KVArenaError(
                    f"shared page {page.page_id} is not resident in this arena"
                )
            shared += page.tokens
        if shared > self._pages_tokens(tokens):
            raise KVArenaError(
                f"shared prefix of {shared} tokens exceeds the "
                f"{self._pages_tokens(tokens)}-token region"
            )
        return shared

    def _pinned_delta_tokens(self, shared_pages: Sequence[KVPage]) -> int:
        """Tokens that would move from reclaimable to committed if these
        pages gained their first region reference."""
        return sum(p.tokens for p in shared_pages if self._reclaimable(p))

    # -- admission ------------------------------------------------------------

    def fits_at_all(self, prompt_tokens: int, max_total_tokens: int) -> bool:
        """Could this request *ever* be admitted (even into an empty arena)?

        The serving loop sheds requests for which this is False rather than
        letting them block the queue head forever.  Judged cache-blind (no
        shared-prefix credit) so shed decisions are identical with prefix
        caching on or off.
        """
        initial = self._pages_tokens(prompt_tokens) * self.bytes_per_token
        worst = self._pages_tokens(max_total_tokens) * self.bytes_per_token
        return initial <= self.watermark_bytes and worst <= self.capacity_bytes

    def can_admit(self, prompt_tokens: int, max_total_tokens: int,
                  shared_pages: Sequence[KVPage] = ()) -> bool:
        """True if admitting now keeps both capacity invariants.

        ``max_total_tokens`` is the request's worst-case KV length (prompt
        plus its full output budget).  ``shared_pages`` is an already-
        resident page-aligned prefix the newcomer would attach instead of
        allocating — those pages are charged once globally, so the gates
        only price the private remainder (plus the one-time pinning of
        shared pages currently held only by the index).
        """
        if prompt_tokens <= 0 or max_total_tokens < prompt_tokens:
            raise ValueError(
                f"invalid token counts: prompt {prompt_tokens}, "
                f"max_total {max_total_tokens}"
            )
        shared = self._validated_shared(shared_pages, prompt_tokens)
        pinned = self._pinned_delta_tokens(shared_pages)
        initial = self._pages_tokens(prompt_tokens) - shared
        worst = self._pages_tokens(max_total_tokens) - shared
        committed = self._resident_tokens - self._reclaimable_tokens
        bpt = self.bytes_per_token
        return ((committed + pinned + initial) * bpt <= self.watermark_bytes
                and (committed + pinned + self._growth_tokens + worst) * bpt
                <= self.capacity_bytes)

    def _materialize(self, req_id: int, tokens: int, max_total_tokens: int,
                     shared_pages: Sequence[KVPage]) -> None:
        """Build a region: attach the shared prefix, allocate the rest."""
        shared = sum(p.tokens for p in shared_pages)
        pages: List[KVPage] = []
        for page in shared_pages:
            self._ref(page)
            pages.append(page)
        for _ in range(self._pages_count(tokens)
                       - shared // self.page_tokens):
            pages.append(self._alloc_page())
        region = KVRegion(
            req_id=req_id,
            tokens=tokens,
            worst_case_tokens=self._pages_tokens(max_total_tokens),
            pages=pages,
            shared_tokens=shared,
        )
        self._regions[req_id] = region
        self._growth_tokens += region.worst_case_tokens \
            - region.reserved_tokens
        self.shared_tokens_attached += shared

    def admit(self, req_id: int, prompt_tokens: int, max_total_tokens: int,
              shared_pages: Sequence[KVPage] = ()) -> bool:
        """Reserve a KV region for a new request; False if the gate holds it.

        A successful admission attaches ``shared_pages`` (a resident,
        page-aligned prompt prefix — typically the longest
        :class:`~repro.memory.prefix_index.RadixPrefixIndex` match) by
        refcount, allocates private pages for the remainder of the
        page-rounded prompt, and re-plans the arena layout.
        """
        if req_id in self._regions:
            raise KVArenaError(f"request {req_id} already has a KV region")
        if not self.can_admit(prompt_tokens, max_total_tokens, shared_pages):
            self.denials += 1
            if self.metrics is not None:
                self.metrics.counter("kv_arena_denials_total").inc()
            return False
        self._materialize(req_id, prompt_tokens, max_total_tokens,
                          shared_pages)
        self.admissions += 1
        if self.metrics is not None:
            self.metrics.counter("kv_arena_admissions_total").inc()
        self._replan()
        if _arena_hooks:
            _notify(self, "admit", req_id, prompt_tokens)
        return True

    def fork(self, parent_req_id: int, child_req_id: int,
             max_total_tokens: int) -> bool:
        """Copy-on-write fork: a new region sharing the parent's pages.

        The parent's fully-written pages are attached by refcount (both
        regions only ever append past them, so they are immutable); the
        partial tail page, if any, is the one page either side could
        still write, and is copied for the child up front.  The same dual
        admission gate applies, charging the child only for its private
        pages; False means the gate holds it.
        """
        parent = self.region_of(parent_req_id)
        if child_req_id in self._regions:
            raise KVArenaError(
                f"request {child_req_id} already has a KV region"
            )
        if max_total_tokens < parent.tokens:
            raise ValueError(
                f"invalid fork budget: parent holds {parent.tokens} tokens, "
                f"max_total {max_total_tokens}"
            )
        aligned = (parent.tokens // self.page_tokens) * self.page_tokens
        shared_pages = parent.pages[:aligned // self.page_tokens]
        if not self.can_admit(parent.tokens, max_total_tokens, shared_pages):
            self.denials += 1
            if self.metrics is not None:
                self.metrics.counter("kv_arena_denials_total").inc()
            return False
        self._materialize(child_req_id, parent.tokens, max_total_tokens,
                          shared_pages)
        self.forks += 1
        self._replan()
        if _arena_hooks:
            _notify(self, "admit", child_req_id, parent.tokens)
        return True

    # -- growth / release -----------------------------------------------------

    def append(self, req_id: int, tokens: int = 1) -> None:
        """Grow a region by ``tokens`` generated positions.

        Growing past the current reservation extends it a page at a time
        (triggering the length-aware re-plan); the admission-time
        worst-case bound guarantees the extension fits — reclaiming
        index-only pages on the way if the arena is at capacity.
        """
        if tokens <= 0:
            raise ValueError(f"tokens must be positive, got {tokens}")
        region = self.region_of(req_id)
        region.tokens += tokens
        if region.tokens > region.worst_case_tokens:
            raise KVArenaError(
                f"request {req_id} grew to {region.tokens} tokens past its "
                f"admitted worst case {region.worst_case_tokens}"
            )
        grew = False
        while region.tokens > region.reserved_tokens:
            region.pages.append(self._alloc_page())
            self._growth_tokens -= self.page_tokens
            grew = True
        if grew:
            self._replan()
        if _arena_hooks:
            _notify(self, "append", req_id, tokens)

    def _drop_region(self, req_id: int) -> KVRegion:
        self.region_of(req_id)  # raises KVArenaError on unknown requests
        region = self._regions.pop(req_id)
        self._growth_tokens -= region.worst_case_tokens \
            - region.reserved_tokens
        for page in region.pages:
            self._unref(page)
        return region

    def release(self, req_id: int) -> None:
        """Free a completed request's pages (refcount-zero ones only) and
        re-plan the survivors.  Pages the prefix index or a sibling region
        still references stay resident."""
        tokens = self._drop_region(req_id).tokens
        self.releases += 1
        if self.metrics is not None:
            self.metrics.counter("kv_arena_releases_total").inc()
        self._replan()
        if _arena_hooks:
            _notify(self, "release", req_id, tokens)

    # -- preemption / recovery ------------------------------------------------

    def preempt(self, req_id: int) -> int:
        """Evict a live region under pressure; returns the tokens dropped.

        The victim's *private* KV state is gone — the serving loop must
        re-queue it and recompute (prefill over prompt + already-generated
        tokens, minus any still-cached prefix) when it is re-admitted via
        :meth:`restore`.  Shared pages survive as long as the index or a
        sibling region references them.  Counted separately from
        :meth:`release` so chaos reports can distinguish completions from
        evictions.
        """
        region = self.region_of(req_id)
        tokens = region.tokens
        self._drop_region(req_id)
        self.preemptions += 1
        if self.metrics is not None:
            self.metrics.counter("kv_arena_preemptions_total").inc()
        self._replan()
        if _arena_hooks:
            _notify(self, "preempt", req_id, tokens)
        return tokens

    def restore(self, req_id: int, tokens: int, max_total_tokens: int,
                shared_pages: Sequence[KVPage] = ()) -> bool:
        """Re-admit a preempted (or crash-evicted) request's region.

        ``tokens`` is the recompute length (prompt + tokens generated
        before eviction); ``shared_pages`` is any still-resident cached
        prefix (the recompute then covers only the remainder).  The same
        dual admission gate applies — shared pages counted once — so a
        successful restore re-establishes the append-never-fails
        guarantee.  False means the gate still holds it — retry later.
        """
        if req_id in self._regions:
            raise KVArenaError(f"request {req_id} already has a KV region")
        if not self.can_admit(tokens, max_total_tokens, shared_pages):
            self.denials += 1
            if self.metrics is not None:
                self.metrics.counter("kv_arena_denials_total").inc()
            return False
        self._materialize(req_id, tokens, max_total_tokens, shared_pages)
        self.restores += 1
        if self.metrics is not None:
            self.metrics.counter("kv_arena_restores_total").inc()
        self._replan()
        if _arena_hooks:
            _notify(self, "restore", req_id, tokens)
        return True

    # -- planning -------------------------------------------------------------

    def _replan(self) -> None:
        """Re-run Algorithm 1 over the distinct resident pages.

        Every resident page overlaps every other in time (all live for
        the current decode step), so the records share one [0, 1]
        lifetime — the planner must place them byte-disjoint, which is
        exactly the aliasing invariant ``repro check`` verifies.  Records
        are position-indexed (``kv/page000000`` …), not identity-indexed,
        so runs with the same page count replay one cached plan.
        """
        self.last_records = [
            TensorUsageRecord(
                name=f"kv/page{slot:06d}",
                first_op=0,
                last_op=1,
                size=page.tokens * self.bytes_per_token,
            )
            for slot, page in enumerate(self._pages.values())
        ]
        if self.last_records:
            self.last_plan = self._allocator.plan(self.last_records)
        else:
            # Nothing live: clear chunk residency without planning zero
            # records (the release grace period still retires idle chunks
            # on the next non-empty plan).
            for chunk in self._allocator.chunks:
                chunk.clear()
            self.last_plan = AllocationPlan(placements={}, chunk_sizes={})
        self.replans += 1
        self.peak_used_bytes = max(self.peak_used_bytes, self.used_bytes)
        if self.metrics is not None:
            self.metrics.counter("kv_arena_replans_total").inc()
            self.metrics.gauge("kv_arena_used_bytes").set(
                self.used_bytes, t=self.replans
            )

    def verify(self, live_req_ids: Optional[List[int]] = None) -> List[str]:
        """Memory-plan + refcount-conservation verifier (empty == clean).

        Three audits:

        * the allocation-plan checks over the latest page layout;
        * **refcount conservation** (MEM224): every resident page's
          refcount must equal the number of regions referencing it plus
          its index reference, no resident page may sit at refcount zero,
          and the O(1) token counters must match a from-scratch recount;
        * with ``live_req_ids`` given, the leak invariant: no region may
          outlive its request (after a completion, crash or preemption
          the region must be gone).  Chaos runs pass the set of requests
          still legitimately in flight — an empty set at end of run
          asserts the arena drained completely.
        """
        messages: List[str] = []
        if self.last_plan is not None:
            # Imported lazily: repro.analysis depends on repro.memory.
            from ..analysis.memory_checks import check_plan

            messages.extend(d.message for d in check_plan(self.last_plan,
                                                          self.last_records))
        # Refcount conservation: recompute every page's references from
        # the ground truth (regions + index) and compare.
        expected: Dict[int, int] = {pid: 0 for pid in self._pages}
        for region in self._regions.values():
            for page in region.pages:
                if page.page_id in expected:
                    expected[page.page_id] += 1
                else:
                    messages.append(
                        f"region {region.req_id} references page "
                        f"{page.page_id} with a stale refcount (freed while "
                        f"referenced)"
                    )
        index_pages = set()
        if self._index is not None:
            for page in self._index.resident_pages():
                index_pages.add(page.page_id)
                if page.page_id in expected:
                    expected[page.page_id] += 1
                else:
                    messages.append(
                        f"prefix index references page {page.page_id} with "
                        f"a stale refcount (freed while referenced)"
                    )
        for pid, page in self._pages.items():
            if page.refcount != expected[pid]:
                messages.append(
                    f"page {pid} refcount {page.refcount} diverges from its "
                    f"{expected[pid]} reference(s)"
                )
            if page.in_index != (pid in index_pages):
                messages.append(
                    f"page {pid} refcount index flag {page.in_index} "
                    f"diverges from the prefix index"
                )
            if page.refcount == 0:
                messages.append(
                    f"page {pid} is resident at refcount zero"
                )
        resident = sum(p.tokens for p in self._pages.values())
        growth = sum(r.worst_case_tokens - r.reserved_tokens
                     for r in self._regions.values())
        reclaimable = sum(p.tokens for p in self._pages.values()
                          if self._reclaimable(p))
        for name, fast, slow in (
            ("resident", self._resident_tokens, resident),
            ("growth", self._growth_tokens, growth),
            ("reclaimable", self._reclaimable_tokens, reclaimable),
        ):
            if fast != slow:
                messages.append(
                    f"incremental {name} token counter {fast} diverges from "
                    f"the recounted {slow} (accounting drift)"
                )
        if live_req_ids is not None:
            live = set(live_req_ids)
            for req_id in self._regions:
                if req_id not in live:
                    messages.append(
                        f"KV region for request {req_id} outlives its "
                        f"request (leak)"
                    )
        return messages

    def stats(self) -> Dict[str, object]:
        """Deterministic counters (read by ``repro bench`` and tests)."""
        return {
            "admissions": self.admissions,
            "denials": self.denials,
            "releases": self.releases,
            "replans": self.replans,
            "preemptions": self.preemptions,
            "restores": self.restores,
            "forks": self.forks,
            "live": self.live_requests,
            "used_bytes": self.used_bytes,
            "peak_used_bytes": self.peak_used_bytes,
            "capacity_bytes": self.capacity_bytes,
            "footprint_bytes": self._allocator.footprint_bytes,
            "chunks_released": self._allocator.chunks_released,
            "pages_resident": len(self._pages),
            "pages_reclaimed": self.pages_reclaimed,
            "reclaimable_bytes": self.reclaimable_bytes,
            "shared_tokens_attached": self.shared_tokens_attached,
        }
