"""KV-cache arena for generative serving (iteration-level batching).

Decoder-only generation keeps a per-request key/value cache that grows by
one position per generated token and dies only when the request completes.
That lifetime shape is the opposite of the per-request intermediate
tensors Algorithm 1 was designed for — regions persist *across* many
decode steps — yet the same chunked machinery applies: the arena holds one
:class:`~repro.memory.turbo.TurboAllocator` whose chunks back every live
request's KV region, and every membership or size change re-runs the
paper's length-aware planning (Alg. 1) over the live regions, so layout
quality and chunk reuse come from the exact code path the BERT serving
stack uses (including its plan cache: a steady-state decode batch replans
only when membership changes, and repeated shapes replay cached plans).

Capacity model (what bounds the decode batch instead of ``max_batch``):

* Regions are reserved in **pages** of ``page_tokens`` tokens; a region's
  footprint is its page-rounded token count times ``bytes_per_token``.
* Admission is gated by a **high-watermark**: a request is admitted only
  while the arena's reserved bytes (plus the newcomer's initial
  reservation) stay under ``high_watermark * capacity_bytes``.  The
  headroom above the watermark absorbs in-flight growth.
* Overflow is impossible by construction: admission also requires that the
  sum of every live request's *worst-case* region (prompt plus its full
  token budget, page-rounded) fits ``capacity_bytes``.  Growth therefore
  never needs to evict — the invariant the serving loop relies on.

``verify()`` runs the repo's memory-plan verifier
(:func:`repro.analysis.memory_checks.check_plan`) over the arena's latest
plan; ``python -m repro check`` drives a scripted arena episode through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..gpusim.memory import DeviceMemory
from .chunk import DEFAULT_CHUNK_SIZE
from .plan import AllocationPlan
from .records import TensorUsageRecord
from .turbo import TurboAllocator


class KVArenaError(RuntimeError):
    """An arena invariant was violated (unknown request, capacity breach)."""


#: Observers notified after every successful arena mutation, as
#: ``hook(arena, op, req_id, tokens)`` with ``op`` one of ``admit`` /
#: ``append`` / ``release`` / ``preempt`` / ``restore`` and ``tokens``
#: the operation's token delta (region size for release/preempt).  The
#: engine-trace sanitizer's conservation ledger attaches here; the list
#: is empty — a no-op — in normal runs.
_arena_hooks: List[Callable[["KVCacheArena", str, int, int], None]] = []


def _notify(arena: "KVCacheArena", op: str, req_id: int, tokens: int) -> None:
    for hook in list(_arena_hooks):
        hook(arena, op, req_id, tokens)


def kv_bytes_per_token(num_layers: int, num_heads: int, head_size: int,
                       dtype_bytes: int = 4) -> int:
    """Bytes of K+V cache one token occupies across all layers."""
    if min(num_layers, num_heads, head_size, dtype_bytes) <= 0:
        raise ValueError("all KV geometry factors must be positive")
    return 2 * num_layers * num_heads * head_size * dtype_bytes


@dataclass
class KVRegion:
    """One live request's KV cache: current length and reservations."""

    req_id: int
    tokens: int            # KV positions written so far (prompt + generated)
    reserved_tokens: int   # page-rounded footprint actually held
    worst_case_tokens: int  # page-rounded bound the region may grow to


class KVCacheArena:
    """Simulated KV-cache memory for a continuously-batched decode loop.

    Parameters
    ----------
    capacity_bytes:
        Total simulated device memory set aside for KV caches.
    bytes_per_token:
        Per-token KV footprint (see :func:`kv_bytes_per_token`).
    page_tokens:
        Reservation granularity; regions grow a page at a time, so the
        length-aware re-plan runs once per page, not once per token.
    high_watermark:
        Admission gate as a fraction of capacity; the remainder is growth
        headroom.
    device_memory / chunk_size / release_after / plan_cache-behaviour:
        Forwarded to the backing :class:`TurboAllocator`; chunks released
        after sitting unused keep malloc churn in check exactly as in the
        encoder serving path.
    metrics:
        Optional :class:`repro.observability.MetricsRegistry`; publishes
        admission/denial/release/replan counters and a used-bytes gauge.
    """

    def __init__(
        self,
        capacity_bytes: int,
        bytes_per_token: int,
        page_tokens: int = 16,
        high_watermark: float = 0.9,
        device_memory: Optional[DeviceMemory] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        release_after: Optional[int] = 4,
        metrics=None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        if bytes_per_token <= 0:
            raise ValueError(f"bytes_per_token must be positive, got {bytes_per_token}")
        if page_tokens <= 0:
            raise ValueError(f"page_tokens must be positive, got {page_tokens}")
        if not 0.0 < high_watermark <= 1.0:
            raise ValueError(
                f"high_watermark must be in (0, 1], got {high_watermark}"
            )
        self.capacity_bytes = capacity_bytes
        self.bytes_per_token = bytes_per_token
        self.page_tokens = page_tokens
        self.high_watermark = high_watermark
        self.metrics = metrics
        self._allocator = TurboAllocator(
            device_memory if device_memory is not None else DeviceMemory(),
            chunk_size=chunk_size,
            release_after=release_after,
        )
        self._regions: Dict[int, KVRegion] = {}  # insertion-ordered
        self.last_plan: Optional[AllocationPlan] = None
        self.last_records: List[TensorUsageRecord] = []
        self.admissions = 0
        self.denials = 0
        self.releases = 0
        self.replans = 0
        self.preemptions = 0
        self.restores = 0
        self.peak_used_bytes = 0

    # -- capacity accounting --------------------------------------------------

    @property
    def watermark_bytes(self) -> int:
        """Admission threshold in bytes."""
        return int(self.capacity_bytes * self.high_watermark)

    @property
    def used_bytes(self) -> int:
        """Reserved bytes across live regions (page-rounded)."""
        return sum(r.reserved_tokens for r in self._regions.values()) \
            * self.bytes_per_token

    @property
    def worst_case_bytes(self) -> int:
        """Bytes every live region could grow to (the no-overflow bound)."""
        return sum(r.worst_case_tokens for r in self._regions.values()) \
            * self.bytes_per_token

    @property
    def live_requests(self) -> int:
        return len(self._regions)

    def _pages(self, tokens: int) -> int:
        """Round a token count up to whole pages."""
        pages = -(-tokens // self.page_tokens)
        return pages * self.page_tokens

    def region_of(self, req_id: int) -> KVRegion:
        try:
            return self._regions[req_id]
        except KeyError:
            raise KVArenaError(f"request {req_id} has no KV region") from None

    # -- admission ------------------------------------------------------------

    def fits_at_all(self, prompt_tokens: int, max_total_tokens: int) -> bool:
        """Could this request *ever* be admitted (even into an empty arena)?

        The serving loop sheds requests for which this is False rather than
        letting them block the queue head forever.
        """
        initial = self._pages(prompt_tokens) * self.bytes_per_token
        worst = self._pages(max_total_tokens) * self.bytes_per_token
        return initial <= self.watermark_bytes and worst <= self.capacity_bytes

    def can_admit(self, prompt_tokens: int, max_total_tokens: int) -> bool:
        """True if admitting now keeps both capacity invariants.

        ``max_total_tokens`` is the request's worst-case KV length (prompt
        plus its full output budget).
        """
        if prompt_tokens <= 0 or max_total_tokens < prompt_tokens:
            raise ValueError(
                f"invalid token counts: prompt {prompt_tokens}, "
                f"max_total {max_total_tokens}"
            )
        initial = self._pages(prompt_tokens) * self.bytes_per_token
        worst = self._pages(max_total_tokens) * self.bytes_per_token
        return (self.used_bytes + initial <= self.watermark_bytes
                and self.worst_case_bytes + worst <= self.capacity_bytes)

    def admit(self, req_id: int, prompt_tokens: int,
              max_total_tokens: int) -> bool:
        """Reserve a KV region for a new request; False if the gate holds it.

        A successful admission reserves ``prompt_tokens`` (page-rounded)
        and re-plans the arena layout.
        """
        if req_id in self._regions:
            raise KVArenaError(f"request {req_id} already has a KV region")
        if not self.can_admit(prompt_tokens, max_total_tokens):
            self.denials += 1
            if self.metrics is not None:
                self.metrics.counter("kv_arena_denials_total").inc()
            return False
        self._regions[req_id] = KVRegion(
            req_id=req_id,
            tokens=prompt_tokens,
            reserved_tokens=self._pages(prompt_tokens),
            worst_case_tokens=self._pages(max_total_tokens),
        )
        self.admissions += 1
        if self.metrics is not None:
            self.metrics.counter("kv_arena_admissions_total").inc()
        self._replan()
        if _arena_hooks:
            _notify(self, "admit", req_id, prompt_tokens)
        return True

    # -- growth / release -----------------------------------------------------

    def append(self, req_id: int, tokens: int = 1) -> None:
        """Grow a region by ``tokens`` generated positions.

        Growing past the current reservation extends it a page at a time
        (triggering the length-aware re-plan); the admission-time
        worst-case bound guarantees the extension fits.
        """
        if tokens <= 0:
            raise ValueError(f"tokens must be positive, got {tokens}")
        region = self.region_of(req_id)
        region.tokens += tokens
        if region.tokens > region.worst_case_tokens:
            raise KVArenaError(
                f"request {req_id} grew to {region.tokens} tokens past its "
                f"admitted worst case {region.worst_case_tokens}"
            )
        if region.tokens > region.reserved_tokens:
            region.reserved_tokens = self._pages(region.tokens)
            if self.used_bytes > self.capacity_bytes:  # pragma: no cover
                raise KVArenaError(
                    "KV arena overflow — admission invariant violated"
                )
            self._replan()
        if _arena_hooks:
            _notify(self, "append", req_id, tokens)

    def release(self, req_id: int) -> None:
        """Free a completed request's region and re-plan the survivors."""
        tokens = self.region_of(req_id).tokens
        del self._regions[req_id]
        self.releases += 1
        if self.metrics is not None:
            self.metrics.counter("kv_arena_releases_total").inc()
        self._replan()
        if _arena_hooks:
            _notify(self, "release", req_id, tokens)

    # -- preemption / recovery ------------------------------------------------

    def preempt(self, req_id: int) -> int:
        """Evict a live region under pressure; returns the tokens dropped.

        The KV state is *gone* — the serving loop must re-queue the victim
        and recompute (prefill over prompt + already-generated tokens) when
        it is re-admitted via :meth:`restore`.  Counted separately from
        :meth:`release` so chaos reports can distinguish completions from
        evictions.
        """
        region = self.region_of(req_id)
        tokens = region.tokens
        del self._regions[req_id]
        self.preemptions += 1
        if self.metrics is not None:
            self.metrics.counter("kv_arena_preemptions_total").inc()
        self._replan()
        if _arena_hooks:
            _notify(self, "preempt", req_id, tokens)
        return tokens

    def restore(self, req_id: int, tokens: int,
                max_total_tokens: int) -> bool:
        """Re-admit a preempted (or crash-evicted) request's region.

        ``tokens`` is the recompute length (prompt + tokens generated
        before eviction); the same dual admission gate applies, so a
        successful restore re-establishes the append-never-fails
        guarantee.  False means the gate still holds it — retry later.
        """
        if req_id in self._regions:
            raise KVArenaError(f"request {req_id} already has a KV region")
        if not self.can_admit(tokens, max_total_tokens):
            self.denials += 1
            if self.metrics is not None:
                self.metrics.counter("kv_arena_denials_total").inc()
            return False
        self._regions[req_id] = KVRegion(
            req_id=req_id,
            tokens=tokens,
            reserved_tokens=self._pages(tokens),
            worst_case_tokens=self._pages(max_total_tokens),
        )
        self.restores += 1
        if self.metrics is not None:
            self.metrics.counter("kv_arena_restores_total").inc()
        self._replan()
        if _arena_hooks:
            _notify(self, "restore", req_id, tokens)
        return True

    # -- planning -------------------------------------------------------------

    def _replan(self) -> None:
        """Re-run Algorithm 1 over the live regions.

        Every live region overlaps every other in time (they are all
        resident for the current decode step), so the records share one
        [0, 1] lifetime — the planner must place them byte-disjoint, which
        is exactly the aliasing invariant ``repro check`` verifies.
        """
        self.last_records = [
            TensorUsageRecord(
                name=f"kv/{region.req_id:08d}",
                first_op=0,
                last_op=1,
                size=region.reserved_tokens * self.bytes_per_token,
            )
            for region in self._regions.values()
        ]
        if self.last_records:
            self.last_plan = self._allocator.plan(self.last_records)
        else:
            # Nothing live: clear chunk residency without planning zero
            # records (the release grace period still retires idle chunks
            # on the next non-empty plan).
            for chunk in self._allocator.chunks:
                chunk.clear()
            self.last_plan = AllocationPlan(placements={}, chunk_sizes={})
        self.replans += 1
        self.peak_used_bytes = max(self.peak_used_bytes, self.used_bytes)
        if self.metrics is not None:
            self.metrics.counter("kv_arena_replans_total").inc()
            self.metrics.gauge("kv_arena_used_bytes").set(
                self.used_bytes, t=self.replans
            )

    def verify(self, live_req_ids: Optional[List[int]] = None) -> List[str]:
        """Memory-plan verifier over the latest plan (empty == clean).

        With ``live_req_ids`` given, also enforces the leak invariant: no
        region may outlive its request (after a completion, crash or
        preemption the region must be gone).  Chaos runs pass the set of
        requests still legitimately in flight — an empty set at end of run
        asserts the arena drained completely.
        """
        messages: List[str] = []
        if self.last_plan is not None:
            # Imported lazily: repro.analysis depends on repro.memory.
            from ..analysis.memory_checks import check_plan

            messages.extend(d.message for d in check_plan(self.last_plan,
                                                          self.last_records))
        if live_req_ids is not None:
            live = set(live_req_ids)
            for req_id in self._regions:
                if req_id not in live:
                    messages.append(
                        f"KV region for request {req_id} outlives its "
                        f"request (leak)"
                    )
        return messages

    def stats(self) -> Dict[str, object]:
        """Deterministic counters (read by ``repro bench`` and tests)."""
        return {
            "admissions": self.admissions,
            "denials": self.denials,
            "releases": self.releases,
            "replans": self.replans,
            "preemptions": self.preemptions,
            "restores": self.restores,
            "live": self.live_requests,
            "used_bytes": self.used_bytes,
            "peak_used_bytes": self.peak_used_bytes,
            "capacity_bytes": self.capacity_bytes,
            "footprint_bytes": self._allocator.footprint_bytes,
            "chunks_released": self._allocator.chunks_released,
        }
