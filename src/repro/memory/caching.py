"""Caching allocator baseline (PyTorch / PaddlePaddle / NVlabs-cub style).

PyTorch's CUDA caching allocator incrementally builds a cache of device
blocks and reassigns them to later allocations of compatible size; it never
returns memory to the device unless explicitly flushed.  It is fast (cache
hits avoid the cudaMalloc stall) but — as the paper's Fig. 7 shows — it is
graph-oblivious: tensors that never coexist still occupy distinct cached
blocks, and a variable-length workload populates the cache with blocks for
*every* size class it has ever seen, inflating the footprint well past the
live-tensor peak.

The model here follows the documented PyTorch policy: sizes are rounded
(512 B granularity below 1 MB, 2 MB granularity above), a freed block goes
to a size-keyed free pool, and a request is served from the pool only by a
block of the exact rounded size (no splitting, the dominant behaviour for
the equal-sized activations of DNN inference).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from ..gpusim.memory import DeviceMemory
from .base import BaseAllocator, RequestAllocation
from .records import TensorUsageRecord

SMALL_BLOCK_ROUND = 512
LARGE_BLOCK_ROUND = 2 * 1024 * 1024
SMALL_LIMIT = 1024 * 1024


def round_block_size(nbytes: int) -> int:
    """PyTorch-style size rounding."""
    if nbytes <= 0:
        raise ValueError(f"nbytes must be positive, got {nbytes}")
    granularity = SMALL_BLOCK_ROUND if nbytes < SMALL_LIMIT else LARGE_BLOCK_ROUND
    return ((nbytes + granularity - 1) // granularity) * granularity


class CachingAllocator(BaseAllocator):
    """Eager per-op allocate/free against a block cache."""

    name = "caching"

    def __init__(self, device_memory: Optional[DeviceMemory] = None,
                 metrics=None) -> None:
        super().__init__(device_memory, metrics=metrics)
        self._free_pool: Dict[int, List[int]] = defaultdict(list)  # size -> handles
        self.cache_hits = 0
        self.cache_misses = 0

    # -- block cache --------------------------------------------------------

    def _acquire(self, nbytes: int) -> tuple:
        """Returns (handle, rounded_size); cache hit avoids the malloc stall."""
        rounded = round_block_size(nbytes)
        pool = self._free_pool.get(rounded)
        if pool:
            self.cache_hits += 1
            self._observe_hit()
            return pool.pop(), rounded
        self.cache_misses += 1
        self._observe_miss()
        return self.device_memory.malloc(rounded), rounded

    def _release(self, handle: int, rounded: int) -> None:
        """Freed blocks return to the cache, never to the device."""
        self._free_pool[rounded].append(handle)

    # -- request processing --------------------------------------------------

    def process_request(self, records: Sequence[TensorUsageRecord]) -> RequestAllocation:
        """Replay the request's op sequence with eager alloc/free.

        Tensors are acquired at their producing op and released after their
        last consuming op, exactly as framework reference-counting would.
        """
        self._begin_request()
        before_alloc = self.device_memory.total_alloc_bytes
        before_stall = self.device_memory.stall_s
        if records:
            last_op = max(r.last_op for r in records)
            by_first: Dict[int, List[TensorUsageRecord]] = defaultdict(list)
            by_last: Dict[int, List[TensorUsageRecord]] = defaultdict(list)
            for r in records:
                by_first[r.first_op].append(r)
                by_last[r.last_op].append(r)
            live: Dict[str, tuple] = {}
            for op in range(last_op + 1):
                for r in by_first.get(op, ()):
                    live[r.name] = self._acquire(r.size)
                for r in by_last.get(op, ()):
                    handle, rounded = live.pop(r.name)
                    self._release(handle, rounded)
            assert not live, f"leaked tensors: {sorted(live)}"
        self._observe_footprint()
        return self._snapshot(before_alloc, before_stall)

    @property
    def cached_bytes(self) -> int:
        """Bytes sitting idle in the free pool (footprint minus live)."""
        return sum(size * len(handles) for size, handles in self._free_pool.items())

    def empty_cache(self) -> None:
        """`torch.cuda.empty_cache()` equivalent: return blocks to device."""
        for handles in self._free_pool.values():
            for handle in handles:
                self.device_memory.free(handle)
        self._free_pool.clear()
