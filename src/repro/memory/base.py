"""Common allocator interface for the Fig. 7 comparison.

Every allocator consumes one request's tensor usage records and reports how
much *new* device memory it had to ``cudaMalloc``, its footprint afterwards,
and the stall time charged by the device (raw malloc/free synchronize the
stream, see :mod:`repro.gpusim.memory`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

from ..gpusim.memory import DeviceMemory
from .plan import AllocationPlan
from .records import TensorUsageRecord


@dataclass(frozen=True)
class RequestAllocation:
    """Outcome of serving one request's intermediate-tensor memory.

    ``footprint_bytes`` is the memory held *after* the request (what a
    planner retains between requests); ``peak_bytes`` is the high-water
    mark *during* it (what an eager allocator needed while running).
    """

    new_bytes: int
    footprint_bytes: int
    peak_bytes: int
    stall_s: float
    plan: Optional[AllocationPlan] = None
    #: Whether the plan was replayed from the allocator's plan cache
    #: (identical outcome, but the host-side planning work was skipped).
    plan_cache_hit: bool = False

    @property
    def new_mb(self) -> float:
        return self.new_bytes / (1024.0 * 1024.0)

    @property
    def footprint_mb(self) -> float:
        return self.footprint_bytes / (1024.0 * 1024.0)

    @property
    def peak_mb(self) -> float:
        return self.peak_bytes / (1024.0 * 1024.0)


class BaseAllocator(abc.ABC):
    """Serves a stream of variable-length requests' memory needs.

    ``metrics`` (a :class:`repro.observability.MetricsRegistry`) is
    optional; when set, subclasses publish hit/miss counters and a
    footprint time series labeled with the allocator's ``name``.  The
    series x-axis is the request ordinal — allocators have no clock.
    """

    #: Human-readable name used in experiment tables.
    name: str = "base"

    def __init__(self, device_memory: Optional[DeviceMemory] = None,
                 metrics=None) -> None:
        self.device_memory = device_memory if device_memory is not None else DeviceMemory()
        self.metrics = metrics
        self.requests_processed = 0

    @abc.abstractmethod
    def process_request(self, records: Sequence[TensorUsageRecord]) -> RequestAllocation:
        """Prepare memory for one inference; returns per-request accounting."""

    @property
    def footprint_bytes(self) -> int:
        """Device bytes currently held by this allocator."""
        return self.device_memory.allocated_bytes

    def _begin_request(self) -> None:
        """Reset the per-request peak tracker (call at request start)."""
        self.requests_processed += 1
        self.device_memory.peak_bytes = self.device_memory.allocated_bytes

    def _observe_hit(self) -> None:
        if self.metrics is not None:
            self.metrics.counter("allocator_hits_total", allocator=self.name).inc()

    def _observe_miss(self) -> None:
        if self.metrics is not None:
            self.metrics.counter("allocator_misses_total", allocator=self.name).inc()

    def _observe_footprint(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "allocator_footprint_bytes", allocator=self.name
            ).set(self.footprint_bytes, t=self.requests_processed)

    def _snapshot(self, before_alloc: int, before_stall: float,
                  plan: Optional[AllocationPlan] = None,
                  plan_cache_hit: bool = False) -> RequestAllocation:
        """Build a RequestAllocation from DeviceMemory counter deltas."""
        return RequestAllocation(
            new_bytes=self.device_memory.total_alloc_bytes - before_alloc,
            footprint_bytes=self.device_memory.allocated_bytes,
            peak_bytes=self.device_memory.peak_bytes,
            stall_s=self.device_memory.stall_s - before_stall,
            plan=plan,
            plan_cache_hit=plan_cache_hit,
        )
