"""Tensor usage records — the allocator's input (paper Alg. 1).

A record is the tuple ``{first_op, last_op, size}``: the indices (in the
graph's topological order) of the first and last operator that touch the
tensor, plus its byte size under the current request's sequence length.
Two tensors may share memory iff their ``[first_op, last_op]`` intervals do
not overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass(frozen=True)
class TensorUsageRecord:
    """Lifetime + size of one intermediate tensor for one request."""

    name: str
    first_op: int
    last_op: int
    size: int

    def __post_init__(self) -> None:
        if self.first_op < 0:
            raise ValueError(f"{self.name}: first_op must be >= 0, got {self.first_op}")
        if self.last_op < self.first_op:
            raise ValueError(
                f"{self.name}: last_op {self.last_op} < first_op {self.first_op}"
            )
        if self.size <= 0:
            raise ValueError(f"{self.name}: size must be positive, got {self.size}")

    def overlaps(self, other: "TensorUsageRecord") -> bool:
        """True if the two tensors are live simultaneously (Alg. 2 L6-L8)."""
        return max(self.first_op, other.first_op) <= min(self.last_op, other.last_op)


def sort_by_size(records: Iterable[TensorUsageRecord]) -> List[TensorUsageRecord]:
    """Non-increasing size order (Alg. 1 line 1); name breaks ties so the
    plan is deterministic."""
    return sorted(records, key=lambda r: (-r.size, r.name))


def peak_live_bytes(records: Sequence[TensorUsageRecord]) -> int:
    """Lower bound on any allocation plan: max over ops of live-tensor bytes."""
    if not records:
        return 0
    events: List[tuple] = []
    for r in records:
        events.append((r.first_op, r.size))
        events.append((r.last_op + 1, -r.size))
    events.sort()
    live = peak = 0
    for _, delta in events:
        live += delta
        peak = max(peak, live)
    return peak
