"""Greedy-by-Size for Offset Calculation (GSOC) baseline.

The offset-packing algorithm of Pisarchyk & Lee [23]/[15], which the paper
uses as its allocator baseline in Fig. 7.  GSOC computes a near-optimal
*contiguous* arena layout for a fixed set of usage records: tensors are
visited in non-increasing size order and placed at the lowest offset that
does not byte-overlap any already-placed, lifetime-overlapping tensor.

For fixed-length inference this is excellent.  For variable-length serving
its weakness — the one the paper's chunked allocator fixes — is that the
plan requires one *contiguous* buffer: whenever a new request's arena
exceeds the cached buffer, the whole arena must be re-``cudaMalloc``-ed
(a contiguous block cannot grow in place), so the per-request new-memory
cost is the full new arena size, not the delta.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..gpusim.memory import DeviceMemory
from .base import BaseAllocator, RequestAllocation
from .plan import AllocationPlan, Placement
from .plan_cache import RecordsSignature, records_signature
from .records import TensorUsageRecord, sort_by_size

#: Chunk id used for the single GSOC arena in emitted plans.
ARENA_CHUNK_ID = 0


def gsoc_offsets(records: Sequence[TensorUsageRecord]) -> Tuple[dict, int]:
    """Core GSOC packing: returns ({name: offset}, arena_size).

    O(n²): for each tensor (largest first), scan the placed tensors that
    overlap it in lifetime, offset-sorted, and take the first gap that fits.
    """
    placed: List[Tuple[TensorUsageRecord, int]] = []  # offset-sorted
    offsets = {}
    arena = 0
    for record in sort_by_size(records):
        prev_end = 0
        best: Optional[int] = None
        for other, offset in placed:
            if not record.overlaps(other):
                continue
            if offset - prev_end >= record.size:
                best = prev_end
                break
            prev_end = max(prev_end, offset + other.size)
        if best is None:
            best = prev_end
        offsets[record.name] = best
        arena = max(arena, best + record.size)
        placed.append((record, best))
        placed.sort(key=lambda item: item[1])
    return offsets, arena


class GsocAllocator(BaseAllocator):
    """GSOC re-planned per request over a cached contiguous arena.

    The packing itself is a pure function of the usage records, so its
    result is memoized per records signature (``cache_plans=False``
    restores the always-repack reference behaviour): GSOC runs once per
    *new* shape, and repeat shapes replay the identical layout.
    """

    name = "gsoc"

    def __init__(self, device_memory: Optional[DeviceMemory] = None,
                 cache_plans: bool = True) -> None:
        super().__init__(device_memory)
        self._arena_handle: Optional[int] = None
        self._arena_size = 0
        self._offsets_cache: Optional[Dict[RecordsSignature, Tuple[dict, int]]] = (
            {} if cache_plans else None
        )
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    def _offsets(self, records: Sequence[TensorUsageRecord]) -> Tuple[dict, int]:
        if self._offsets_cache is None:
            return gsoc_offsets(records)
        key = records_signature(records)
        cached = self._offsets_cache.get(key)
        if cached is None:
            self.plan_cache_misses += 1
            cached = self._offsets_cache[key] = gsoc_offsets(records)
        else:
            self.plan_cache_hits += 1
        return cached

    def process_request(self, records: Sequence[TensorUsageRecord]) -> RequestAllocation:
        self._begin_request()
        before_alloc = self.device_memory.total_alloc_bytes
        before_stall = self.device_memory.stall_s
        offsets, required = self._offsets(records)
        if required > self._arena_size:
            # Contiguous arenas cannot grow in place: free + fresh malloc.
            if self._arena_handle is not None:
                self.device_memory.free(self._arena_handle)
            self._arena_handle = self.device_memory.malloc(required)
            self._arena_size = required
        plan = AllocationPlan(
            placements={name: Placement(ARENA_CHUNK_ID, off) for name, off in offsets.items()},
            chunk_sizes={ARENA_CHUNK_ID: self._arena_size} if offsets else {},
        )
        return self._snapshot(before_alloc, before_stall, plan)

    @property
    def arena_size(self) -> int:
        return self._arena_size
