"""The sequence-length-aware allocator (paper Algorithm 1).

Combines a chunk cache (allocation efficiency) with graph-topology-aware
offset packing (footprint): when a request's sequence length becomes known,
the per-tensor usage records are re-planned into the cached chunks; only if
no chunk has a fitting gap is a new chunk ``cudaMalloc``-ed, and chunks the
new plan leaves empty are released (Alg. 1 line 20).

Planning outcomes are additionally cached in a :class:`PlanCache` keyed by
(records, chunk state): a steady-state server re-derives the same plan for
every request at a previously-seen shape, so replaying the cached
assignments skips the O(n²) gap search entirely while remaining observably
identical — placements, counters, stalls, and chunk-release timing all
match the uncached path bit for bit (see :mod:`repro.memory.plan_cache`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..gpusim.memory import DeviceMemory
from .base import BaseAllocator, RequestAllocation
from .chunk import DEFAULT_CHUNK_SIZE, K_SCALE, Chunk, new_chunk_size
from .plan import AllocationPlan, plan_from_chunks
from . import plan_cache as plan_cache_mod
from .plan_cache import CachedPlan, PlanCache, RecordsSignature
from .records import TensorUsageRecord, sort_by_size

#: Sentinel: "caller did not pass plan_cache" (each instance then gets its
#: own private cache; an explicit ``None`` disables caching).
_DEFAULT_CACHE: PlanCache = PlanCache()


class TurboAllocator(BaseAllocator):
    """Paper Algorithm 1: chunked, lifetime-aware, re-planned per request.

    Parameters
    ----------
    device_memory:
        Backing device; chunks are real ``cudaMalloc`` allocations on it.
    chunk_size:
        ``DEFAULT_chunk_SIZE`` of the paper (2 MB).
    k_scale:
        Oversize factor for tensors larger than a default chunk (1.2).
    release_after:
        Alg. 1 line 20 releases chunks the new plan leaves unused.  Doing
        so *immediately* (``release_after=0``, the algorithm's literal
        reading) causes malloc churn on alternating long/short requests,
        which contradicts the paper's measured 0.70 MB/request — the
        deployed system evidently caches idle chunks briefly.  We release
        a chunk after it has sat unused for this many consecutive plans
        (default 8); ``None`` never releases.  Ablated in
        ``benchmarks/test_ablation_allocator_params.py``.
    plan_cache:
        :class:`PlanCache` of planning outcomes (see module docstring);
        pass ``None`` to disable caching entirely (the reference
        behaviour, used as the benchmark baseline).  Defaults to a fresh
        private cache.
    gap_search:
        ``"fast"`` (default) scans the plain-tuple mirror in
        :meth:`Chunk.find_gap`; ``"reference"`` runs the original
        object-walking Algorithm 2 (:meth:`Chunk.find_gap_reference`) —
        the pre-fast-path implementation, used together with
        ``plan_cache=None`` as the benchmark baseline.  Placements are
        identical either way (property-tested).
    """

    name = "turbo"

    def __init__(
        self,
        device_memory: Optional[DeviceMemory] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        k_scale: float = K_SCALE,
        release_after: Optional[int] = 8,
        metrics=None,
        plan_cache: Optional[PlanCache] = _DEFAULT_CACHE,
        gap_search: str = "fast",
    ) -> None:
        super().__init__(device_memory, metrics=metrics)
        if gap_search not in ("fast", "reference"):
            raise ValueError(
                f"gap_search must be 'fast' or 'reference', got {gap_search!r}"
            )
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if k_scale < 1.0:
            raise ValueError(f"k_scale must be >= 1.0, got {k_scale}")
        if release_after is not None and release_after < 0:
            raise ValueError(f"release_after must be >= 0 or None, got {release_after}")
        self.chunk_size = chunk_size
        self.k_scale = k_scale
        self.release_after = release_after
        self.plan_cache = (PlanCache() if plan_cache is _DEFAULT_CACHE
                           else plan_cache)
        self.gap_search = gap_search
        self._chunks: List[Chunk] = []
        self._next_chunk_id = 0
        # Hit = record placed into an existing chunk's gap; miss = a new
        # chunk had to be cudaMalloc'ed (the allocator analogue of the
        # caching allocator's pool hits/misses).
        self.plan_hits = 0
        self.plan_misses = 0
        self.chunks_released = 0
        self.last_plan_cached = False  # did the latest plan() replay a hit?

    # -- Algorithm 1 ---------------------------------------------------------

    def plan(self, records: Sequence[TensorUsageRecord]) -> AllocationPlan:
        """Assign every record to a (chunk, offset); may grow the chunk list."""
        self.last_plan_cached = False
        signature = None
        if self.plan_cache is not None:
            signature = plan_cache_mod.records_signature(records)
            key = (signature, plan_cache_mod.chunk_fingerprint(self._chunks))
            cached = self.plan_cache.get(key)
            if cached is not None:
                self._observe_plan_cache(hit=True)
                return self._replay(signature, cached)
            self._observe_plan_cache(hit=False)
        for chunk in self._chunks:
            chunk.clear()
        find_gap = (Chunk.find_gap_reference if self.gap_search == "reference"
                    else Chunk.find_gap)
        # L1: non-increasing size order.
        for record in sort_by_size(records):
            placed = False
            # L4-L12: first chunk with a fitting gap.
            for chunk in self._chunks:
                offset = find_gap(chunk, record)
                if offset is not None:
                    chunk.assign(record, offset)
                    placed = True
                    self.plan_hits += 1
                    self._observe_hit()
                    break
            if not placed:
                self.plan_misses += 1
                self._observe_miss()
                # L13-L18: append a new chunk sized for the tensor.
                size = new_chunk_size(record.size, self.chunk_size, self.k_scale)
                chunk = Chunk(
                    chunk_id=self._next_chunk_id,
                    size=size,
                    handle=self.device_memory.malloc(size),
                )
                self._next_chunk_id += 1
                self._chunks.append(chunk)
                chunk.assign(record, 0)
        self._release_unused()
        plan = plan_from_chunks(self._chunks)
        if signature is not None:
            # Planning is idempotent: placement is a pure function of the
            # (offset-ordered chunk sizes, records), and freshly malloc'ed
            # chunks sit at the end of the list, reached only when every
            # earlier chunk fails — so re-planning the same records from
            # the *post*-release state reproduces these exact placements
            # with zero mallocs.  Cache every outcome under that state.
            self._store(signature, plan)
        return plan

    def _store(self, signature: RecordsSignature, plan: AllocationPlan) -> None:
        key = (signature, plan_cache_mod.chunk_fingerprint(self._chunks))
        entry = CachedPlan(
            assignments={
                c.chunk_id: tuple(c.assignments) for c in self._chunks
            },
            plan=plan,
            hits=sum(len(c.assignments) for c in self._chunks),
        )
        self.plan_cache.store(key, entry)

    def _replay(self, signature: RecordsSignature,
                cached: CachedPlan) -> AllocationPlan:
        """Restore a cached plan's placements onto the live chunks."""
        for chunk in self._chunks:
            chunk.restore(cached.assignments[chunk.chunk_id])
        self.plan_hits += cached.hits
        if self.metrics is not None and cached.hits:
            self.metrics.counter(
                "allocator_hits_total", allocator=self.name
            ).inc(cached.hits)
        # Release bookkeeping runs live: streaks are state the cache key
        # deliberately ignores (placement never reads them), so cudaFree
        # timing matches the uncached path exactly.
        chunks_before = len(self._chunks)
        self._release_unused()
        if len(self._chunks) != chunks_before:
            # The replay itself released idle chunks, so the post-release
            # state differs from the cached key; re-store under the new
            # fingerprint so the steady state keeps hitting.
            self._store(signature, cached.plan)
        self.last_plan_cached = True
        return cached.plan

    def _release_unused(self) -> None:
        """L20: release chunks the plan leaves unused (after a grace
        period, see the release_after docstring)."""
        if self.release_after is None:
            return
        kept: List[Chunk] = []
        for chunk in self._chunks:
            if chunk.is_unused:
                chunk.unused_streak += 1
                if chunk.unused_streak > self.release_after:
                    if chunk.handle is not None:
                        self.device_memory.free(chunk.handle)
                    self.chunks_released += 1
                    if self.metrics is not None:
                        self.metrics.counter(
                            "allocator_chunks_released_total",
                            allocator=self.name,
                        ).inc()
                    continue
            else:
                chunk.unused_streak = 0
            kept.append(chunk)
        self._chunks = kept

    def _observe_plan_cache(self, hit: bool) -> None:
        if self.metrics is not None:
            name = ("plan_cache_hits_total" if hit else
                    "plan_cache_misses_total")
            self.metrics.counter(name, allocator=self.name).inc()

    def invalidate_plan_cache(self) -> int:
        """Drop cached plans (call after graph or config changes); returns
        the number of entries dropped."""
        if self.plan_cache is None:
            return 0
        dropped = self.plan_cache.invalidate()
        if self.metrics is not None:
            self.metrics.counter(
                "plan_cache_invalidations_total", allocator=self.name
            ).inc()
        return dropped

    def process_request(self, records: Sequence[TensorUsageRecord]) -> RequestAllocation:
        self._begin_request()
        before_alloc = self.device_memory.total_alloc_bytes
        before_stall = self.device_memory.stall_s
        plan = self.plan(records)
        self._observe_footprint()
        return self._snapshot(before_alloc, before_stall, plan,
                              plan_cache_hit=self.last_plan_cached)

    # -- introspection --------------------------------------------------------

    @property
    def chunks(self) -> List[Chunk]:
        return list(self._chunks)

    def chunk_layout(self) -> Dict[int, List[str]]:
        """Tensor names per chunk, offset-ordered (for Fig. 6 rendering)."""
        return {
            c.chunk_id: [a.record.name for a in c.assignments] for c in self._chunks
        }
