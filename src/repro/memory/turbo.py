"""The sequence-length-aware allocator (paper Algorithm 1).

Combines a chunk cache (allocation efficiency) with graph-topology-aware
offset packing (footprint): when a request's sequence length becomes known,
the per-tensor usage records are re-planned into the cached chunks; only if
no chunk has a fitting gap is a new chunk ``cudaMalloc``-ed, and chunks the
new plan leaves empty are released (Alg. 1 line 20).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..gpusim.memory import DeviceMemory
from .base import BaseAllocator, RequestAllocation
from .chunk import DEFAULT_CHUNK_SIZE, K_SCALE, Chunk, new_chunk_size
from .plan import AllocationPlan, plan_from_chunks
from .records import TensorUsageRecord, sort_by_size


class TurboAllocator(BaseAllocator):
    """Paper Algorithm 1: chunked, lifetime-aware, re-planned per request.

    Parameters
    ----------
    device_memory:
        Backing device; chunks are real ``cudaMalloc`` allocations on it.
    chunk_size:
        ``DEFAULT_chunk_SIZE`` of the paper (2 MB).
    k_scale:
        Oversize factor for tensors larger than a default chunk (1.2).
    release_after:
        Alg. 1 line 20 releases chunks the new plan leaves unused.  Doing
        so *immediately* (``release_after=0``, the algorithm's literal
        reading) causes malloc churn on alternating long/short requests,
        which contradicts the paper's measured 0.70 MB/request — the
        deployed system evidently caches idle chunks briefly.  We release
        a chunk after it has sat unused for this many consecutive plans
        (default 8); ``None`` never releases.  Ablated in
        ``benchmarks/test_ablation_allocator_params.py``.
    """

    name = "turbo"

    def __init__(
        self,
        device_memory: Optional[DeviceMemory] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        k_scale: float = K_SCALE,
        release_after: Optional[int] = 8,
        metrics=None,
    ) -> None:
        super().__init__(device_memory, metrics=metrics)
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if k_scale < 1.0:
            raise ValueError(f"k_scale must be >= 1.0, got {k_scale}")
        if release_after is not None and release_after < 0:
            raise ValueError(f"release_after must be >= 0 or None, got {release_after}")
        self.chunk_size = chunk_size
        self.k_scale = k_scale
        self.release_after = release_after
        self._chunks: List[Chunk] = []
        self._next_chunk_id = 0
        # Hit = record placed into an existing chunk's gap; miss = a new
        # chunk had to be cudaMalloc'ed (the allocator analogue of the
        # caching allocator's pool hits/misses).
        self.plan_hits = 0
        self.plan_misses = 0
        self.chunks_released = 0

    # -- Algorithm 1 ---------------------------------------------------------

    def plan(self, records: Sequence[TensorUsageRecord]) -> AllocationPlan:
        """Assign every record to a (chunk, offset); may grow the chunk list."""
        for chunk in self._chunks:
            chunk.clear()
        # L1: non-increasing size order.
        for record in sort_by_size(records):
            placed = False
            # L4-L12: first chunk with a fitting gap.
            for chunk in self._chunks:
                offset = chunk.find_gap(record)
                if offset is not None:
                    chunk.assign(record, offset)
                    placed = True
                    self.plan_hits += 1
                    self._observe_hit()
                    break
            if not placed:
                self.plan_misses += 1
                self._observe_miss()
                # L13-L18: append a new chunk sized for the tensor.
                size = new_chunk_size(record.size, self.chunk_size, self.k_scale)
                chunk = Chunk(
                    chunk_id=self._next_chunk_id,
                    size=size,
                    handle=self.device_memory.malloc(size),
                )
                self._next_chunk_id += 1
                self._chunks.append(chunk)
                chunk.assign(record, 0)
        # L20: release chunks the plan leaves unused (after a grace period,
        # see the release_after docstring).
        if self.release_after is not None:
            kept: List[Chunk] = []
            for chunk in self._chunks:
                if chunk.is_unused:
                    chunk.unused_streak += 1
                    if chunk.unused_streak > self.release_after:
                        if chunk.handle is not None:
                            self.device_memory.free(chunk.handle)
                        self.chunks_released += 1
                        if self.metrics is not None:
                            self.metrics.counter(
                                "allocator_chunks_released_total",
                                allocator=self.name,
                            ).inc()
                        continue
                else:
                    chunk.unused_streak = 0
                kept.append(chunk)
            self._chunks = kept
        return plan_from_chunks(self._chunks)

    def process_request(self, records: Sequence[TensorUsageRecord]) -> RequestAllocation:
        self._begin_request()
        before_alloc = self.device_memory.total_alloc_bytes
        before_stall = self.device_memory.stall_s
        plan = self.plan(records)
        self._observe_footprint()
        return self._snapshot(before_alloc, before_stall, plan)

    # -- introspection --------------------------------------------------------

    @property
    def chunks(self) -> List[Chunk]:
        return list(self._chunks)

    def chunk_layout(self) -> Dict[int, List[str]]:
        """Tensor names per chunk, offset-ordered (for Fig. 6 rendering)."""
        return {
            c.chunk_id: [a.record.name for a in c.assignments] for c in self._chunks
        }
