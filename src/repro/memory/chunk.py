"""Memory chunks and the best-gap search (paper Algorithm 2).

A chunk is a cached block of device memory (2 MB by default).  Tensors are
placed at offsets inside chunks; two tensors may share overlapping byte
ranges iff their lifetimes do not overlap.  ``Chunk.find_gap`` is a faithful
implementation of the paper's ``FindGapFromChunk`` — a best-fit scan over
the chunk's time-overlapping residents, a special case of 2-D strip packing
solved greedily in O(n) per tensor (O(n²) over a request's plan).

Note: line 17 of the paper's Algorithm 2 reads ``chunk_size − prev_offset ≤
size_t``, which would only accept tensors *larger* than the remaining tail;
the surrounding prose and Algorithm 1 make clear the intended condition is
``≥`` (the tail gap fits the tensor).  We implement the corrected form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .records import TensorUsageRecord

#: Paper §4.2: chunks default to 2 MB.
DEFAULT_CHUNK_SIZE = 2 * 1024 * 1024

#: Paper Alg. 1 line 14: oversize tensors get a chunk of size * K_SCALE.
K_SCALE = 1.2


@dataclass(frozen=True)
class ChunkAssignment:
    """One tensor placed at ``offset`` within a chunk."""

    record: TensorUsageRecord
    offset: int

    @property
    def end(self) -> int:
        return self.offset + self.record.size


@dataclass
class Chunk:
    """A cached device-memory block holding offset-assigned tensors."""

    chunk_id: int
    size: int
    handle: Optional[int] = None  # DeviceMemory handle, if backed
    assignments: List[ChunkAssignment] = field(default_factory=list)
    unused_streak: int = 0  # consecutive plans that left this chunk empty

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"chunk size must be positive, got {self.size}")

    def clear(self) -> None:
        """Drop all assignments (start of a new request's plan)."""
        self.assignments.clear()

    def assign(self, record: TensorUsageRecord, offset: int) -> ChunkAssignment:
        """Place ``record`` at ``offset``; keeps assignments offset-sorted."""
        if offset < 0 or offset + record.size > self.size:
            raise ValueError(
                f"tensor {record.name!r} ({record.size} B at {offset}) "
                f"does not fit chunk {self.chunk_id} of {self.size} B"
            )
        assignment = ChunkAssignment(record, offset)
        self.assignments.append(assignment)
        self.assignments.sort(key=lambda a: a.offset)
        return assignment

    def find_gap(self, record: TensorUsageRecord) -> Optional[int]:
        """Paper Algorithm 2: best-fit offset for ``record`` or None.

        Scans residents in offset order; only residents whose lifetime
        overlaps ``record`` constrain placement.  Returns the offset of the
        smallest gap that fits, preferring interior gaps, else the tail.
        """
        smallest_gap = float("inf")
        prev_offset = 0
        best_offset: Optional[int] = None
        for assignment in self.assignments:  # offset-sorted
            x = assignment.record
            # L6-L8: ignore residents that never coexist with the target.
            if record.overlaps(x):
                gap = assignment.offset - prev_offset
                if record.size <= gap < smallest_gap:
                    smallest_gap = gap
                    best_offset = prev_offset
                prev_offset = max(prev_offset, assignment.end)
        if best_offset is None and self.size - prev_offset >= record.size:
            best_offset = prev_offset
        return best_offset

    @property
    def used_bytes(self) -> int:
        """High-water offset of the current plan (not a live-byte count)."""
        return max((a.end for a in self.assignments), default=0)

    @property
    def is_unused(self) -> bool:
        return not self.assignments


def new_chunk_size(tensor_size: int, default_size: int = DEFAULT_CHUNK_SIZE,
                   k_scale: float = K_SCALE) -> int:
    """Size for a freshly appended chunk (Alg. 1 line 14)."""
    if tensor_size <= 0:
        raise ValueError(f"tensor_size must be positive, got {tensor_size}")
    return max(default_size, int(tensor_size * k_scale))
