"""Memory chunks and the best-gap search (paper Algorithm 2).

A chunk is a cached block of device memory (2 MB by default).  Tensors are
placed at offsets inside chunks; two tensors may share overlapping byte
ranges iff their lifetimes do not overlap.  ``Chunk.find_gap`` is a faithful
implementation of the paper's ``FindGapFromChunk`` — a best-fit scan over
the chunk's time-overlapping residents, a special case of 2-D strip packing
solved greedily in O(n) per tensor (O(n²) over a request's plan).

Note: line 17 of the paper's Algorithm 2 reads ``chunk_size − prev_offset ≤
size_t``, which would only accept tensors *larger* than the remaining tail;
the surrounding prose and Algorithm 1 make clear the intended condition is
``≥`` (the tail gap fits the tensor).  We implement the corrected form.

The gap search dominates the serving simulator's host time (it runs once
per record per chunk per request), so :meth:`Chunk.find_gap` scans a
parallel list of plain-int tuples instead of the :class:`ChunkAssignment`
dataclasses — same algorithm, no attribute/method dispatch per resident.
:meth:`Chunk.find_gap_reference` keeps the original object-walking form;
the property tests assert both return identical offsets.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .records import TensorUsageRecord

#: Paper §4.2: chunks default to 2 MB.
DEFAULT_CHUNK_SIZE = 2 * 1024 * 1024

#: Paper Alg. 1 line 14: oversize tensors get a chunk of size * K_SCALE.
K_SCALE = 1.2


@dataclass(frozen=True)
class ChunkAssignment:
    """One tensor placed at ``offset`` within a chunk."""

    record: TensorUsageRecord
    offset: int

    @property
    def end(self) -> int:
        return self.offset + self.record.size


@dataclass
class Chunk:
    """A cached device-memory block holding offset-assigned tensors."""

    chunk_id: int
    size: int
    handle: Optional[int] = None  # DeviceMemory handle, if backed
    assignments: List[ChunkAssignment] = field(default_factory=list)
    unused_streak: int = 0  # consecutive plans that left this chunk empty
    #: Offset-sorted (offset, end, first_op, last_op) per assignment —
    #: the hot-loop mirror of ``assignments``.
    _meta: List[Tuple[int, int, int, int]] = field(default_factory=list, repr=False)
    _offsets: List[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"chunk size must be positive, got {self.size}")
        if self.assignments and not self._meta:
            self.restore(sorted(self.assignments, key=lambda a: a.offset))

    def clear(self) -> None:
        """Drop all assignments (start of a new request's plan)."""
        self.assignments.clear()
        self._meta.clear()
        self._offsets.clear()

    def restore(self, assignments: Sequence[ChunkAssignment]) -> None:
        """Adopt an offset-sorted assignment list (plan-cache replay)."""
        self.assignments = list(assignments)
        self._offsets = [a.offset for a in self.assignments]
        self._meta = [
            (a.offset, a.offset + a.record.size, a.record.first_op,
             a.record.last_op)
            for a in self.assignments
        ]

    def assign(self, record: TensorUsageRecord, offset: int) -> ChunkAssignment:
        """Place ``record`` at ``offset``; keeps assignments offset-sorted."""
        if offset < 0 or offset + record.size > self.size:
            raise ValueError(
                f"tensor {record.name!r} ({record.size} B at {offset}) "
                f"does not fit chunk {self.chunk_id} of {self.size} B"
            )
        assignment = ChunkAssignment(record, offset)
        index = bisect_right(self._offsets, offset)
        self.assignments.insert(index, assignment)
        self._offsets.insert(index, offset)
        self._meta.insert(
            index, (offset, offset + record.size, record.first_op, record.last_op)
        )
        return assignment

    def find_gap(self, record: TensorUsageRecord) -> Optional[int]:
        """Paper Algorithm 2: best-fit offset for ``record`` or None.

        Scans residents in offset order; only residents whose lifetime
        overlaps ``record`` constrain placement.  Returns the offset of the
        smallest gap that fits, preferring interior gaps, else the tail.
        """
        need = record.size
        if need > self.size:
            # No gap in this chunk can ever fit the tensor; skip the scan
            # (the reference form reaches the same None via the tail check).
            return None
        first = record.first_op
        last = record.last_op
        smallest_gap: Optional[int] = None
        prev_end = 0
        best_offset: Optional[int] = None
        for offset, end, res_first, res_last in self._meta:  # offset-sorted
            # L6-L8: ignore residents that never coexist with the target.
            if res_first <= last and first <= res_last:
                gap = offset - prev_end
                if need <= gap and (smallest_gap is None or gap < smallest_gap):
                    smallest_gap = gap
                    best_offset = prev_end
                if end > prev_end:
                    prev_end = end
        if best_offset is None and self.size - prev_end >= need:
            best_offset = prev_end
        return best_offset

    def find_gap_reference(self, record: TensorUsageRecord) -> Optional[int]:
        """The original object-walking Algorithm 2 (kept as test oracle)."""
        smallest_gap = float("inf")
        prev_offset = 0
        best_offset: Optional[int] = None
        for assignment in self.assignments:  # offset-sorted
            x = assignment.record
            if record.overlaps(x):
                gap = assignment.offset - prev_offset
                if record.size <= gap < smallest_gap:
                    smallest_gap = gap
                    best_offset = prev_offset
                prev_offset = max(prev_offset, assignment.end)
        if best_offset is None and self.size - prev_offset >= record.size:
            best_offset = prev_offset
        return best_offset

    @property
    def used_bytes(self) -> int:
        """High-water offset of the current plan (not a live-byte count)."""
        return max((a.end for a in self.assignments), default=0)

    @property
    def is_unused(self) -> bool:
        return not self.assignments


def new_chunk_size(tensor_size: int, default_size: int = DEFAULT_CHUNK_SIZE,
                   k_scale: float = K_SCALE) -> int:
    """Size for a freshly appended chunk (Alg. 1 line 14)."""
    if tensor_size <= 0:
        raise ValueError(f"tensor_size must be positive, got {tensor_size}")
    return max(default_size, int(tensor_size * k_scale))
