"""Allocation plans: tensor -> (chunk, offset) maps, with validation.

A plan is correct iff (a) every tensor lies inside its chunk and (b) no two
tensors whose lifetimes overlap also overlap in bytes within one chunk.
:func:`validate_plan` checks both and is used by the property-based tests
as the ground-truth invariant for every allocator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .chunk import Chunk
from .records import TensorUsageRecord


class PlanError(ValueError):
    """An allocation plan violates a safety invariant."""


@dataclass(frozen=True)
class Placement:
    """Where one tensor lives for the duration of a request."""

    chunk_id: int
    offset: int


@dataclass
class AllocationPlan:
    """Result of planning one request's intermediate tensors."""

    placements: Dict[str, Placement]
    chunk_sizes: Dict[int, int]

    @property
    def footprint_bytes(self) -> int:
        """Total bytes of all chunks the plan uses."""
        return sum(self.chunk_sizes.values())

    def chunk_of(self, name: str) -> Placement:
        try:
            return self.placements[name]
        except KeyError:
            raise PlanError(f"tensor {name!r} has no placement") from None


def validate_plan(plan: AllocationPlan, records: Sequence[TensorUsageRecord]) -> None:
    """Raise :class:`PlanError` on any bounds or aliasing violation."""
    by_name = {r.name: r for r in records}
    if set(plan.placements) != set(by_name):
        missing = set(by_name) - set(plan.placements)
        extra = set(plan.placements) - set(by_name)
        raise PlanError(f"plan/records mismatch: missing={missing} extra={extra}")

    by_chunk: Dict[int, List[Tuple[TensorUsageRecord, Placement]]] = {}
    for name, placement in plan.placements.items():
        record = by_name[name]
        if placement.chunk_id not in plan.chunk_sizes:
            raise PlanError(f"{name!r} placed in unknown chunk {placement.chunk_id}")
        size = plan.chunk_sizes[placement.chunk_id]
        if placement.offset < 0 or placement.offset + record.size > size:
            raise PlanError(
                f"{name!r} ({record.size} B at {placement.offset}) exceeds "
                f"chunk {placement.chunk_id} of {size} B"
            )
        by_chunk.setdefault(placement.chunk_id, []).append((record, placement))

    for chunk_id, entries in by_chunk.items():
        for i, (rec_a, place_a) in enumerate(entries):
            for rec_b, place_b in entries[i + 1 :]:
                if not rec_a.overlaps(rec_b):
                    continue  # disjoint lifetimes may alias
                a0, a1 = place_a.offset, place_a.offset + rec_a.size
                b0, b1 = place_b.offset, place_b.offset + rec_b.size
                if a0 < b1 and b0 < a1:
                    raise PlanError(
                        f"live tensors {rec_a.name!r} and {rec_b.name!r} "
                        f"overlap in chunk {chunk_id}: [{a0},{a1}) vs [{b0},{b1})"
                    )


def plan_from_chunks(chunks: Sequence[Chunk]) -> AllocationPlan:
    """Snapshot a chunk list's current assignments into a plan."""
    placements: Dict[str, Placement] = {}
    chunk_sizes: Dict[int, int] = {}
    for chunk in chunks:
        if chunk.is_unused:
            continue
        chunk_sizes[chunk.chunk_id] = chunk.size
        for assignment in chunk.assignments:
            placements[assignment.record.name] = Placement(
                chunk.chunk_id, assignment.offset
            )
    return AllocationPlan(placements=placements, chunk_sizes=chunk_sizes)
