"""Allocation plans: tensor -> (chunk, offset) maps, with validation.

A plan is correct iff (a) every tensor lies inside its chunk and (b) no two
tensors whose lifetimes overlap also overlap in bytes within one chunk.
:func:`validate_plan` checks both and is used by the property-based tests
as the ground-truth invariant for every allocator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from .chunk import Chunk
from .records import TensorUsageRecord


class PlanError(ValueError):
    """An allocation plan violates a safety invariant."""


@dataclass(frozen=True)
class Placement:
    """Where one tensor lives for the duration of a request."""

    chunk_id: int
    offset: int


@dataclass
class AllocationPlan:
    """Result of planning one request's intermediate tensors."""

    placements: Dict[str, Placement]
    chunk_sizes: Dict[int, int]

    @property
    def footprint_bytes(self) -> int:
        """Total bytes of all chunks the plan uses."""
        return sum(self.chunk_sizes.values())

    def chunk_of(self, name: str) -> Placement:
        try:
            return self.placements[name]
        except KeyError:
            raise PlanError(f"tensor {name!r} has no placement") from None


def validate_plan(plan: AllocationPlan, records: Sequence[TensorUsageRecord]) -> None:
    """Raise :class:`PlanError` on any bounds or aliasing violation.

    Delegates to the analysis pass
    (:func:`repro.analysis.memory_checks.check_plan`), which reports
    *every* violation; the first one — in the pass's deterministic order —
    becomes the exception message, preserving the historical wording.
    """
    # Imported lazily: repro.analysis depends on this module at import time.
    from ..analysis.memory_checks import check_plan

    violations = check_plan(plan, records)
    if violations:
        raise PlanError(violations[0].message)


def plan_from_chunks(chunks: Sequence[Chunk]) -> AllocationPlan:
    """Snapshot a chunk list's current assignments into a plan."""
    placements: Dict[str, Placement] = {}
    chunk_sizes: Dict[int, int] = {}
    for chunk in chunks:
        if chunk.is_unused:
            continue
        chunk_sizes[chunk.chunk_id] = chunk.size
        for assignment in chunk.assignments:
            placements[assignment.record.name] = Placement(
                chunk.chunk_id, assignment.offset
            )
    return AllocationPlan(placements=placements, chunk_sizes=chunk_sizes)
