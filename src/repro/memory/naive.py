"""Naive allocator baseline: raw cudaMalloc/cudaFree per tensor.

Optimal footprint (only live tensors occupy memory) but every allocation
stalls the device stream — the paper measures 50% compute idle on a Tesla
M40 at (batch 20, seq 128) from exactly this pattern (§4.2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence

from .base import BaseAllocator, RequestAllocation
from .records import TensorUsageRecord


class NaiveAllocator(BaseAllocator):
    """Allocate at first use, free at last use, no caching whatsoever."""

    name = "naive"

    def process_request(self, records: Sequence[TensorUsageRecord]) -> RequestAllocation:
        self._begin_request()
        before_alloc = self.device_memory.total_alloc_bytes
        before_stall = self.device_memory.stall_s
        if records:
            last_op = max(r.last_op for r in records)
            by_first: Dict[int, List[TensorUsageRecord]] = defaultdict(list)
            by_last: Dict[int, List[TensorUsageRecord]] = defaultdict(list)
            for r in records:
                by_first[r.first_op].append(r)
                by_last[r.last_op].append(r)
            live: Dict[str, int] = {}
            for op in range(last_op + 1):
                for r in by_first.get(op, ()):
                    live[r.name] = self.device_memory.malloc(r.size)
                for r in by_last.get(op, ()):
                    self.device_memory.free(live.pop(r.name))
            assert not live, f"leaked tensors: {sorted(live)}"
        return self._snapshot(before_alloc, before_stall)
