"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``report [--quick] [OUTPUT]``
    Regenerate the full evaluation report (all tables/figures) to a
    markdown file (default ``REPORT.md``); ``--quick`` skips the heavy
    serving experiments.
``selfcheck``
    Fast sanity pass: build the BERT graph, run one simulated inference on
    every runtime, verify fused-vs-reference numerics on a tiny model.
``trace [--model tiny|base] [--rate R] [--duration D] [--seed N]
        [--scheduler dp|naive|nobatch|continuous] [--policy hungry|lazy]
        [--out trace.json] [--metrics-out metrics.json]``
    Run one instrumented serving workload and write a Chrome
    ``trace_event`` JSON (load in ``chrome://tracing`` / Perfetto) plus a
    metrics JSON (counters/gauges/histograms).  ``--scheduler continuous``
    traces the iteration-level generative loop instead (GPT model, one
    span per decode step, KV-arena counters on the track).
``chaos [--scenario smoke|blackout|storm|gen-blackout|gen-storm]
        [--seed N] [--metrics-out chaos_metrics.json] [--no-check]``
    Run one scripted fault-injection scenario (baseline + chaos pair over
    the same workload), print resilience metrics (retries, deadline
    misses, breaker transitions, post-fault goodput vs. baseline) and exit
    non-zero unless goodput recovers past the scenario threshold.  The
    ``gen-*`` scenarios exercise generation serving — replica crashes with
    KV loss and recompute-on-resume (``gen-blackout``), KV-pressure
    preemption under a transient-failure storm (``gen-storm``) — and
    additionally require a clean end-of-run KV leak audit.
    Deterministic given the seed: two runs write byte-identical metrics.
``bench [--profile smoke|full|gen] [--seed N] [--out BENCH_host.json]``
    Wall-clock benchmarks of the host fast path (compiled cost models,
    plan cache, pruned DP scheduler) against the seed baselines, written
    as a JSON payload whose counter fields are deterministic.  The
    ``gen`` profile instead benchmarks generative serving — iteration-
    level continuous batching (plain and with chunked prefill +
    dual-stream overlap) vs the request-level DP baseline — and writes
    ``BENCH_gen.json`` by default.
    ``--verify-overlap`` runs the chunked-overlap equivalence gate:
    the gen workload with chunking off vs on must produce identical
    per-request token streams and completion sets, and TTFT p99 must
    not regress.  ``--verify-prefix`` runs the analogous prefix-cache
    gate over multi-tenant prefix-population workloads: cache on vs
    off must produce identical token streams, admission orders and
    completion sets, and TTFT p99 must not regress.
    ``--verify`` instead runs the cross-layer equivalence verifier
    (compiled vs. interpretive pricing, fast vs. reference ``latency()``,
    pruned vs. reference DP partitions, cached vs. uncached plans) and
    exits non-zero on any divergence.  ``--diff A B`` compares the
    deterministic fields of two payloads (CI determinism gate).
``check [--format text|json] [--out PATH] [--seed N]
        [--family graph|memory|schedule|determinism|engine|lifecycle ...]
        [--families A,B] [--lint-root DIR] [--select CODE] [--ignore CODE]
        [--max-warnings N] [--sanitize SCENARIO]``
    Static analysis: graph shape/dtype/fusion verification over every
    built-in model builder, memory-plan bounds/aliasing + fragmentation
    verification, happens-before race detection over a seeded serving
    schedule, the determinism + engine-API lint over the ``repro``
    sources and tests, and (``engine``/``lifecycle`` families) the
    engine-trace sanitizer over seeded runs of every serving loop.
    ``--sanitize <scenario>`` instead executes one named serving or
    chaos scenario under the trace recorder and verifies clock,
    lifecycle and KV-conservation invariants over the real execution.
    ``--select``/``--ignore`` filter diagnostics by code or code prefix;
    ``--max-warnings N`` turns an otherwise-clean run with more than N
    warnings into a non-zero exit.  Exits non-zero if any
    ERROR-severity diagnostic is found.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import main as report_main

    argv = (["--quick"] if args.quick else []) + (
        [args.output] if args.output else []
    )
    return report_main(argv)


def _cmd_selfcheck(_args: argparse.Namespace) -> int:
    import numpy as np

    from .models import (
        bert_base,
        build_encoder_graph,
        encoder_forward,
        init_encoder_weights,
        tiny_bert,
    )
    from .runtime import RUNTIME_FACTORIES

    print("building BERT graph ...", end=" ", flush=True)
    graph = build_encoder_graph(bert_base())
    print(f"ok ({len(graph.nodes)} nodes)")

    print("runtime latencies at (batch 1, seq 128), simulated RTX 2060:")
    for name, factory in RUNTIME_FACTORIES.items():
        runtime = factory(graph=graph)
        print(f"  {name:<18} {runtime.latency(1, 128) * 1e3:7.2f} ms")

    print("numeric check (tiny BERT, fused vs reference) ...", end=" ",
          flush=True)
    config = tiny_bert()
    weights = init_encoder_weights(config, seed=0)
    ids = np.random.default_rng(0).integers(0, config.vocab_size, (2, 16))
    fused = encoder_forward(config, weights, ids, fused=True)
    reference = encoder_forward(config, weights, ids, fused=False)
    error = float(np.abs(fused - reference).max())
    if error > 1e-3:
        print(f"FAILED (max error {error:.2e})")
        return 1
    print(f"ok (max error {error:.2e})")
    print("selfcheck passed.")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .observability import validate_trace_dict
    from .observability.harness import run_traced_workload

    result = run_traced_workload(
        model=args.model,
        rate_per_s=args.rate,
        duration_s=args.duration,
        seed=args.seed,
        scheduler=args.scheduler,
        policy=args.policy,
        max_batch=args.max_batch,
    )
    problems = validate_trace_dict(result.tracer.to_dict())
    if problems:
        for p in problems[:10]:
            print(f"trace schema error: {p}", file=sys.stderr)
        return 1
    result.tracer.save(args.out)
    result.registry.save(args.metrics_out)
    s = result.serving
    print(f"workload: {s.offered} requests @ {s.request_rate:.1f} req/s "
          f"({args.model} model, {args.scheduler} scheduler, "
          f"{args.policy} policy)")
    print(f"served:   {s.completed} completed in {s.batches_executed} batches, "
          f"{s.response_throughput:.1f} resp/s, p95 {s.latency.p95_ms:.2f} ms, "
          f"utilization {s.utilization:.0%}")
    if hasattr(s, "ttft"):
        print(f"gen:      ttft avg {s.ttft.avg_ms:.2f} ms, tpot avg "
              f"{s.tpot_ms_avg:.3f} ms, {s.tokens_generated} tokens in "
              f"{s.decode_steps} decode steps, kv peak "
              f"{s.kv_peak_bytes / 1024.0:.0f} KiB")
    print(f"trace:    {args.out} ({len(result.tracer)} events; open in "
          f"chrome://tracing or https://ui.perfetto.dev)")
    print(f"metrics:  {args.metrics_out} ({len(result.registry)} series)")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .resilience.chaos import (
        GEN_SCENARIOS,
        SCENARIOS,
        format_gen_report,
        format_report,
        run_chaos,
        run_gen_chaos,
    )

    if args.scenario in GEN_SCENARIOS:
        report = run_gen_chaos(scenario_name=args.scenario, seed=args.seed)
        print(format_gen_report(report))
        if args.metrics_out:
            report.registry.save(args.metrics_out)
            print(f"metrics:   {args.metrics_out} "
                  f"({len(report.registry)} series)")
        if args.no_check:
            return 0
        return 0 if report.recovered and report.leak_free else 1
    if args.scenario not in SCENARIOS:  # argparse choices guard; belt and braces
        print(f"unknown scenario {args.scenario!r}", file=sys.stderr)
        return 2
    report = run_chaos(scenario_name=args.scenario, seed=args.seed)
    print(format_report(report))
    if args.metrics_out:
        report.registry.save(args.metrics_out)
        print(f"metrics:   {args.metrics_out} ({len(report.registry)} series)")
    if args.no_check:
        return 0
    return 0 if report.recovered else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        diff_bench,
        format_bench,
        load_bench,
        run_bench,
        save_bench,
        verify_host_fast_path,
        verify_overlap_equivalence,
        verify_prefix_equivalence,
    )

    if args.diff:
        first, second = args.diff
        problems = diff_bench(load_bench(first), load_bench(second),
                              rel_tol=args.diff_tol)
        if problems:
            for p in problems[:20]:
                print(f"bench diff: {p}", file=sys.stderr)
            print(f"bench: {len(problems)} deterministic field(s) differ",
                  file=sys.stderr)
            return 1
        print("bench: deterministic fields identical")
        return 0

    if args.verify:
        problems = verify_host_fast_path(seed=args.seed)
        if problems:
            for p in problems[:20]:
                print(f"equivalence: {p}", file=sys.stderr)
            print(f"bench --verify: {len(problems)} divergence(s)",
                  file=sys.stderr)
            return 1
        print("bench --verify: fast path is equivalent to the reference "
              "path (compiled pricing, latency, partitions, plans)")
        return 0

    if args.verify_overlap:
        problems = verify_overlap_equivalence(
            seed=args.seed, progress=lambda msg: print(f"bench: {msg}"))
        if problems:
            for p in problems[:20]:
                print(f"overlap-equivalence: {p}", file=sys.stderr)
            print(f"bench --verify-overlap: {len(problems)} divergence(s)",
                  file=sys.stderr)
            return 1
        print("bench --verify-overlap: chunked prefill + dual-stream "
              "overlap preserves per-request token streams and completion "
              "sets; TTFT p99 does not regress")
        return 0

    if args.verify_prefix:
        problems = verify_prefix_equivalence(
            seed=args.seed, progress=lambda msg: print(f"bench: {msg}"))
        if problems:
            for p in problems[:20]:
                print(f"prefix-equivalence: {p}", file=sys.stderr)
            print(f"bench --verify-prefix: {len(problems)} divergence(s)",
                  file=sys.stderr)
            return 1
        print("bench --verify-prefix: radix prefix caching preserves "
              "per-request token streams, admission order and completion "
              "sets; TTFT p99 does not regress")
        return 0

    payload = run_bench(args.profile, seed=args.seed,
                        progress=lambda msg: print(f"bench: {msg}"))
    print(format_bench(payload))
    # The gen profile always writes its payload (default BENCH_gen.json):
    # the CI determinism gate diffs two of them.
    out = args.out
    if out is None and args.profile == "gen":
        out = "BENCH_gen.json"
    if out:
        save_bench(payload, out)
        print(f"bench: wrote {out}")
    return 0 if payload["equivalence_ok"] else 1


def _split_codes(values: Optional[List[str]]) -> List[str]:
    """Flatten repeatable, comma-separated code/prefix filter options."""
    out: List[str] = []
    for value in values or ():
        out.extend(token.strip() for token in value.split(",")
                   if token.strip())
    return out


def _cmd_check(args: argparse.Namespace) -> int:
    from .analysis import run_check, run_sanitized

    families = list(args.family or [])
    families.extend(_split_codes([args.families] if args.families else []))
    try:
        if args.sanitize:
            report = run_sanitized(args.sanitize, seed=args.seed)
        else:
            report = run_check(
                families=families or None,
                seed=args.seed,
                lint_root=args.lint_root,
            )
    except ValueError as exc:
        print(f"check: {exc}", file=sys.stderr)
        return 2
    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    if select or ignore:
        def keep(d) -> bool:
            if select and not any(d.code.startswith(p) for p in select):
                return False
            return not any(d.code.startswith(p) for p in ignore)

        report.diagnostics[:] = [d for d in report.diagnostics if keep(d)]
    rendered = (report.render_json() if args.format == "json"
                else report.render_text())
    counts = report.counts()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
        print(f"check: wrote {args.out} ({counts['error']} error(s), "
              f"{counts['warning']} warning(s), {counts['info']} info)")
    else:
        print(rendered)
    if report.has_errors:
        return 1
    if args.max_warnings is not None and counts["warning"] > args.max_warnings:
        print(f"check: {counts['warning']} warning(s) exceed "
              f"--max-warnings {args.max_warnings}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TurboTransformers reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="regenerate the evaluation report")
    report.add_argument("output", nargs="?", default=None,
                        help="output markdown path (default REPORT.md)")
    report.add_argument("--quick", action="store_true",
                        help="skip the heavy serving experiments")
    report.set_defaults(func=_cmd_report)

    selfcheck = sub.add_parser("selfcheck", help="fast sanity pass")
    selfcheck.set_defaults(func=_cmd_selfcheck)

    trace = sub.add_parser(
        "trace", help="run an instrumented workload, write Chrome trace + metrics"
    )
    trace.add_argument("--model", choices=("tiny", "base"), default="tiny")
    trace.add_argument("--rate", type=float, default=200.0,
                       help="offered load in requests/s (default 200)")
    trace.add_argument("--duration", type=float, default=0.5,
                       help="offered-load horizon in seconds (default 0.5)")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--scheduler",
                       choices=("dp", "dp-pruned", "naive", "nobatch",
                                "continuous"),
                       default="dp")
    trace.add_argument("--policy", choices=("hungry", "lazy"), default="hungry")
    trace.add_argument("--max-batch", type=int, default=16)
    trace.add_argument("--out", default="trace.json",
                       help="Chrome trace_event output path")
    trace.add_argument("--metrics-out", default="metrics.json",
                       help="metrics JSON output path")
    trace.set_defaults(func=_cmd_trace)

    chaos = sub.add_parser(
        "chaos",
        help="run a scripted fault scenario and check goodput recovery",
    )
    chaos.add_argument("--scenario",
                       choices=("smoke", "blackout", "storm",
                                "gen-blackout", "gen-storm"),
                       default="smoke")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--metrics-out", default="chaos_metrics.json",
                       help="resilience metrics JSON output path "
                            "('' to skip writing)")
    chaos.add_argument("--no-check", action="store_true",
                       help="report only; do not fail on missed recovery")
    chaos.set_defaults(func=_cmd_chaos)

    bench = sub.add_parser(
        "bench",
        help="wall-clock benchmarks of the host fast path (writes "
             "BENCH_host.json)",
    )
    from .bench import PROFILES  # stdlib-only module; cheap at parse time

    bench.add_argument("--profile", choices=tuple(sorted(PROFILES)),
                       default="smoke")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--out", default=None,
                       help="write the JSON payload here "
                            "(e.g. BENCH_host.json)")
    bench.add_argument("--verify-overlap", action="store_true",
                       help="verify the chunked-prefill overlap "
                            "equivalence gate (gen profile): token "
                            "streams identical, TTFT p99 no worse")
    bench.add_argument("--verify-prefix", action="store_true",
                       help="verify the prefix-cache equivalence gate "
                            "(gen profile): token streams, admission "
                            "order and completion sets identical with "
                            "the cache on, TTFT p99 no worse")
    bench.add_argument("--verify", action="store_true",
                       help="run the fast-path equivalence verifier "
                            "instead of timing")
    bench.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                       help="compare the deterministic fields of two "
                            "bench JSON files")
    bench.add_argument("--diff-tol", type=float, default=0.0,
                       help="relative tolerance for numeric fields under "
                            "--diff (default 0: bit-exact)")
    bench.set_defaults(func=_cmd_bench)

    check = sub.add_parser(
        "check",
        help="static analysis: graph/plan/schedule verifiers + determinism lint",
    )
    check.add_argument("--format", choices=("text", "json"), default="text")
    check.add_argument("--out", default=None,
                       help="write the report here instead of stdout")
    check.add_argument("--seed", type=int, default=0,
                       help="seed for the serving-schedule scenario")
    check.add_argument("--family", action="append",
                       choices=("graph", "memory", "schedule", "determinism",
                                "engine", "lifecycle"),
                       help="run only the named checker family (repeatable; "
                            "default: all)")
    check.add_argument("--families", default=None, metavar="A,B",
                       help="comma-separated checker families (combines "
                            "with --family)")
    check.add_argument("--lint-root", default=None,
                       help="directory or file for the determinism lint "
                            "(default: the repro package plus the repo "
                            "tests/ tree)")
    check.add_argument("--select", action="append", default=None,
                       metavar="CODE",
                       help="keep only diagnostics matching these codes or "
                            "prefixes (comma-separated, repeatable)")
    check.add_argument("--ignore", action="append", default=None,
                       metavar="CODE",
                       help="drop diagnostics matching these codes or "
                            "prefixes (comma-separated, repeatable)")
    check.add_argument("--max-warnings", type=int, default=None, metavar="N",
                       help="exit non-zero when more than N warnings remain "
                            "after filtering")
    check.add_argument("--sanitize", default=None, metavar="SCENARIO",
                       help="run one serving/chaos scenario under the "
                            "engine-trace sanitizer instead of the static "
                            "families (see repro.analysis.sanitize_scenarios)")
    check.set_defaults(func=_cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI test
    raise SystemExit(main())
