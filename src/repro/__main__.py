"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``report [--quick] [OUTPUT]``
    Regenerate the full evaluation report (all tables/figures) to a
    markdown file (default ``REPORT.md``); ``--quick`` skips the heavy
    serving experiments.
``selfcheck``
    Fast sanity pass: build the BERT graph, run one simulated inference on
    every runtime, verify fused-vs-reference numerics on a tiny model.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import main as report_main

    argv = (["--quick"] if args.quick else []) + (
        [args.output] if args.output else []
    )
    return report_main(argv)


def _cmd_selfcheck(_args: argparse.Namespace) -> int:
    import numpy as np

    from .models import (
        bert_base,
        build_encoder_graph,
        encoder_forward,
        init_encoder_weights,
        tiny_bert,
    )
    from .runtime import RUNTIME_FACTORIES

    print("building BERT graph ...", end=" ", flush=True)
    graph = build_encoder_graph(bert_base())
    print(f"ok ({len(graph.nodes)} nodes)")

    print("runtime latencies at (batch 1, seq 128), simulated RTX 2060:")
    for name, factory in RUNTIME_FACTORIES.items():
        runtime = factory(graph=graph)
        print(f"  {name:<18} {runtime.latency(1, 128) * 1e3:7.2f} ms")

    print("numeric check (tiny BERT, fused vs reference) ...", end=" ",
          flush=True)
    config = tiny_bert()
    weights = init_encoder_weights(config, seed=0)
    ids = np.random.default_rng(0).integers(0, config.vocab_size, (2, 16))
    fused = encoder_forward(config, weights, ids, fused=True)
    reference = encoder_forward(config, weights, ids, fused=False)
    error = float(np.abs(fused - reference).max())
    if error > 1e-3:
        print(f"FAILED (max error {error:.2e})")
        return 1
    print(f"ok (max error {error:.2e})")
    print("selfcheck passed.")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TurboTransformers reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="regenerate the evaluation report")
    report.add_argument("output", nargs="?", default=None,
                        help="output markdown path (default REPORT.md)")
    report.add_argument("--quick", action="store_true",
                        help="skip the heavy serving experiments")
    report.set_defaults(func=_cmd_report)

    selfcheck = sub.add_parser("selfcheck", help="fast sanity pass")
    selfcheck.set_defaults(func=_cmd_selfcheck)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI test
    raise SystemExit(main())
