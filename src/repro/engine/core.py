"""The one discrete-event core under every serving simulator.

The repo's serving half used to carry four hand-rolled copies of the same
virtual-time loop (``serving.server``, ``serving.continuous``,
``serving.ebird``, ``serving.cluster``), and they diverged enough to
harbor real bugs — epsilon time nudges, stale queue-depth traces,
scheduling against the wrong cost model.  This module is the single
replacement: a virtual clock, an event heap with a *documented*
deterministic ordering, and cooperative tasks/timers, so a server is just
a set of event handlers plus plain code that occupies busy windows.

Event ordering
--------------
Events are dispatched in ``(time, priority, seq)`` order.  ``priority``
defaults to the :class:`EventKind` value, so at the **same virtual time**
the documented order is::

    ARRIVAL (0)  <  RETRY (1)  <  WAKE (2)  <  TRIGGER (3)

i.e. new work enters the queue first, failed attempts re-enter next,
timer continuations (batch completions, task resumes, recovery wake-ups)
run after the queues are current, and trigger-policy evaluations observe
everything that happened at that instant.  ``seq`` (schedule order)
breaks remaining ties, so two runs of the same workload dispatch
identically.

Invariants
----------
* The clock is owned by the engine: it advances **only** to the timestamp
  of a real scheduled event, never by epsilon nudges.  Zero-progress
  rounds are impossible by construction.
* Scheduling into the past raises :class:`EngineError`; scheduling *at*
  ``now`` is allowed (the event dispatches before time moves on).
* Cancelled events never fire; cancellation is O(1) (lazy heap deletion).

Busy windows
------------
``advance(delay)`` models a resource occupying ``[now, now + delay]``
(a batch executing, a decode step): it schedules a marker WAKE at the end
of the window and dispatches every event due inside it — arrivals land in
queues at their true timestamps — returning with the clock exactly on the
window end.  ``spawn(generator)`` runs a cooperative task: the generator
yields delays (virtual seconds) and is resumed by engine timers, which is
how multi-round work (a replica executing batches back to back) is
expressed without a private loop.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, List, Optional, Tuple

from .instrument import EngineInstrumentation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults import EngineFaultInjector


class EngineError(RuntimeError):
    """An engine invariant was violated (e.g. scheduling into the past)."""


class EventKind(enum.IntEnum):
    """Event vocabulary; the value doubles as the same-time priority."""

    ARRIVAL = 0  #: a request entering the system at its arrival timestamp
    RETRY = 1    #: a failed attempt re-entering after its backoff
    WAKE = 2     #: a timer: busy-window end, task resume, recovery wake-up
    TRIGGER = 3  #: a trigger-policy decision point


@dataclass
class Event:
    """One scheduled occurrence.  Sorts by ``(time, priority, seq)``."""

    time: float
    priority: int
    seq: int
    kind: EventKind
    callback: Optional[Callable[["Event"], None]] = None
    payload: Any = None
    cancelled: bool = field(default=False, compare=False)


class VirtualClock:
    """Monotone virtual time; only the engine moves it."""

    __slots__ = ("_now",)

    def __init__(self) -> None:
        self._now = 0.0  # repro: allow(DET406)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        if t < self._now:
            raise EngineError(
                f"clock cannot move backwards: {t} < {self._now}"
            )
        self._now = t  # repro: allow(DET406)


class Task:
    """A cooperative task: a generator yielding virtual-time delays.

    The first segment runs synchronously at ``spawn``; each ``yield d``
    suspends the task and the engine resumes it ``d`` virtual seconds
    later via a WAKE timer.  ``done`` flips when the generator returns.
    """

    __slots__ = ("engine", "gen", "name", "done")

    def __init__(self, engine: "Engine",
                 gen: Generator[float, None, None], name: str) -> None:
        self.engine = engine
        self.gen = gen
        self.name = name
        self.done = False
        self._resume(None)

    def _resume(self, _event: Optional[Event]) -> None:
        try:
            delay = self.gen.send(None)
        except StopIteration:
            self.done = True
            return
        if delay < 0:
            raise EngineError(
                f"task {self.name!r} yielded a negative delay: {delay}"
            )
        self.engine.schedule(self.engine.now + delay, EventKind.WAKE,
                             self._resume)


#: Observers notified with every newly constructed :class:`Engine`.
#: :class:`repro.analysis.engine_checks.EngineTraceRecorder` appends here
#: while attached; the list is empty — and the notification a no-op — in
#: every normal run, so bench equivalence baselines are unaffected.
_engine_hooks: List[Callable[["Engine"], None]] = []


class Engine:
    """Virtual clock + deterministic event heap + cooperative timers."""

    def __init__(
        self,
        instrumentation: Optional[EngineInstrumentation] = None,
        faults: Optional["EngineFaultInjector"] = None,
    ) -> None:
        self.clock = VirtualClock()
        self.instrumentation = instrumentation
        #: Optional fault injector (see :mod:`repro.engine.faults`).  When
        #: set, ``advance`` stretches its busy windows under the injector's
        #: active latency spikes / kernel stalls; crash windows and
        #: transient-failure verdicts stay dispatch-layer queries the
        #: hosted server makes through the same object.
        self.faults = faults
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._live = 0
        self._dispatch_hooks: List[Callable[[Event], None]] = []
        self.events_dispatched = 0
        #: Actual duration of the last ``advance`` window (after fault
        #: stretching) — what busy/utilization accounting should charge.
        self.last_advance_s = 0.0
        if _engine_hooks:
            for hook in list(_engine_hooks):
                hook(self)

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        return self.clock.now

    # -- scheduling ------------------------------------------------------
    def schedule(
        self,
        time: float,
        kind: EventKind,
        callback: Optional[Callable[[Event], None]] = None,
        payload: Any = None,
        priority: Optional[int] = None,
    ) -> Event:
        """Schedule an event; ``time`` must be >= ``now``."""
        if time < self.now:
            raise EngineError(
                f"cannot schedule {kind.name} at {time} < now {self.now}"
            )
        event = Event(
            time=time,
            priority=int(kind) if priority is None else priority,
            seq=self._seq,
            kind=kind,
            callback=callback,
            payload=payload,
        )
        self._seq += 1
        heapq.heappush(self._heap, (event.time, event.priority,  # repro: allow(DET405)
                                    event.seq, event))
        self._live += 1
        return event

    def after(
        self,
        delay: float,
        kind: EventKind = EventKind.WAKE,
        callback: Optional[Callable[[Event], None]] = None,
        payload: Any = None,
    ) -> Event:
        """Schedule relative to ``now``."""
        return self.schedule(self.now + delay, kind, callback, payload)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (idempotent; O(1))."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    # -- inspection ------------------------------------------------------
    @property
    def pending(self) -> bool:
        return self._live > 0

    def peek(self) -> Optional[Event]:
        """Next live event without dispatching it (skims cancelled ones)."""
        while self._heap:
            event = self._heap[0][3]
            if event.cancelled:
                heapq.heappop(self._heap)  # repro: allow(DET405)
                continue
            return event
        return None

    def add_dispatch_hook(self, hook: Callable[[Event], None]) -> None:
        """Observe every dispatched event (after its handler ran)."""
        self._dispatch_hooks.append(hook)

    # -- dispatch --------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Dispatch the next event: advance the clock to its timestamp,
        run its callback, then notify instrumentation and hooks."""
        event = self.peek()
        if event is None:
            return None
        heapq.heappop(self._heap)  # repro: allow(DET405)
        self._live -= 1
        self.clock.advance_to(event.time)  # repro: allow(DET406)
        self.events_dispatched += 1
        if event.callback is not None:
            event.callback(event)
        if self.instrumentation is not None:
            self.instrumentation.observe_dispatch(event)
        for hook in self._dispatch_hooks:
            hook(event)
        return event

    def step_due(self) -> List[Event]:
        """Dispatch the next event plus every event sharing its timestamp.

        Servers that evaluate a policy per *instant* (not per event) use
        this so simultaneous arrivals are all visible before a round.
        """
        first = self.step()
        if first is None:
            return []
        dispatched = [first]
        while True:
            event = self.peek()
            if event is None or event.time > self.now:
                break
            stepped = self.step()
            assert stepped is not None
            dispatched.append(stepped)
        return dispatched

    def run(self) -> None:
        """Dispatch until the heap is empty."""
        while self.step() is not None:
            pass

    def advance(
        self,
        delay: float,
        label: Optional[str] = None,
        tid: str = "gpu",
        cat: str = "event",
        **attrs: object,
    ) -> float:
        """Occupy the window ``[now, now + delay]``.

        Dispatches every event due inside the window (handlers should only
        mutate queues — the occupying resource is busy), then returns with
        the clock exactly on the window end.  With ``label`` set and a
        tracer attached, emits a complete span covering the window.
        """
        if delay < 0:
            raise EngineError(f"cannot advance by a negative delay: {delay}")
        if self.faults is not None:
            # Latency spikes / kernel stalls become engine effects here:
            # the busy window itself is longer, so in-window arrivals,
            # spans and busy accounting all see the stretched duration.
            delay = self.faults.stretch(delay, self.now, label)
        self.last_advance_s = delay
        started = self.now
        marker = self.schedule(started + delay, EventKind.WAKE)
        while True:
            event = self.step()
            assert event is not None, "marker guarantees progress"
            if event is marker:
                break
        if label is not None and self.instrumentation is not None:
            self.instrumentation.span(label, started, delay, tid=tid,
                                      cat=cat, **attrs)
        return self.now

    def run_until(self, t: float) -> float:
        """Dispatch every event due up to absolute time ``t`` and land the
        clock exactly there.

        Unlike :meth:`advance` this is not a busy window: no fault
        stretching, no span.  Serving loops use it to sleep out a crash
        outage — arrivals and retries due inside still land in queues at
        their true timestamps.
        """
        if t < self.now:
            raise EngineError(f"cannot run_until {t} < now {self.now}")
        marker = self.schedule(t, EventKind.WAKE)
        while True:
            event = self.step()
            assert event is not None, "marker guarantees progress"
            if event is marker:
                break
        return self.now

    # -- tasks -----------------------------------------------------------
    def spawn(self, gen: Generator[float, None, None],
              name: str = "task") -> Task:
        """Run a cooperative task (see :class:`Task`)."""
        return Task(self, gen, name)
