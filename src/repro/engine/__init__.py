"""``repro.engine`` — the discrete-event core shared by all servers.

See :mod:`repro.engine.core` for the event vocabulary, the documented
``(time, priority, seq)`` tiebreak order, and the engine invariants, and
:mod:`repro.engine.instrument` for the engine-level observability hooks.
"""

from .core import Engine, EngineError, Event, EventKind, Task, VirtualClock
from .faults import EngineFaultInjector
from .instrument import EngineInstrumentation

__all__ = [
    "Engine",
    "EngineError",
    "EngineFaultInjector",
    "EngineInstrumentation",
    "Event",
    "EventKind",
    "Task",
    "VirtualClock",
]
