"""Engine-level instrumentation: spans, queue-depth series, event counts.

Observability used to be threaded through each server's private loop by
hand, which is how the queue-depth trace counter drifted from the metrics
gauge (one sampled before ``queue.drain``, the other after).  Bundling
the tracer and registry here gives every engine-hosted server the same
signals from the same call sites:

* ``observe_dispatch`` — per-kind event counters
  (``engine_events_dispatched_total{kind=...}``);
* ``queue_depth`` — **one** sample fans out to both the Chrome-trace
  counter and the metrics gauge, so they cannot disagree again;
* ``span`` — a complete event on a named track, emitted by
  :meth:`repro.engine.Engine.advance` for busy windows.

A disabled tracer or absent registry costs nothing: the constructor drops
them and every method no-ops, preserving the repo's
zero-overhead-when-disabled guarantee.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..observability import MetricsRegistry, Tracer
    from .core import Event


class EngineInstrumentation:
    """Tracer + metrics hooks shared by every engine-hosted server."""

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer: Optional["Tracer"] = None,
                 metrics: Optional["MetricsRegistry"] = None) -> None:
        if tracer is not None and not tracer.enabled:
            tracer = None
        self.tracer = tracer
        self.metrics = metrics

    @property
    def trace_on(self) -> bool:
        return self.tracer is not None

    def observe_dispatch(self, event: "Event") -> None:
        if self.metrics is not None:
            self.metrics.counter("engine_events_dispatched_total",
                                 kind=event.kind.name.lower()).inc()

    def queue_depth(self, now: float, depth: int, name: str = "queue",
                    gauge: str = "serving_queue_depth") -> None:
        """One depth sample, fanned out to trace counter and gauge alike."""
        if self.metrics is not None:
            self.metrics.gauge(gauge).set(depth, t=now)
        if self.tracer is not None:
            self.tracer.counter(name, now, {"depth": depth})

    def fault(self, kind: str) -> None:
        """Count one injected fault effect (stretch, attempt_failure, ...)."""
        if self.metrics is not None:
            self.metrics.counter("engine_faults_total", kind=kind).inc()

    def span(self, name: str, start_s: float, dur_s: float,
             tid: str = "gpu", cat: str = "event", **attrs: object) -> None:
        if self.tracer is not None:
            self.tracer.complete(name, start_s, dur_s, tid=tid, cat=cat,
                                 **attrs)
