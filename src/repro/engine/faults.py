"""Engine-level fault injection: one code path for every serving loop.

Fault *schedules* live in :class:`repro.resilience.faults.FaultPlan`; this
module is where they become **engine-visible effects**.  Before this layer
existed each simulator threaded the plan through its own loop by hand
(``simulate_serving`` multiplied batch costs inline, ``simulate_cluster``
projected crash windows itself, the generation servers saw no faults at
all), which is exactly how per-simulator plumbing drifts.  An
:class:`EngineFaultInjector` binds one plan to one server id and exposes
the four effects every engine-hosted server needs:

* **stretch** — latency spikes (and kernel stalls matched against the
  busy-window label) inflate the duration of a busy window.  Installing
  the injector on an :class:`~repro.engine.Engine` makes
  ``engine.advance`` apply the stretch itself, so an inline serving loop
  gets spikes for free; task-based loops call :meth:`stretch` on the
  delay they are about to ``yield``.
* **crash queries** — ``crashed`` / ``crash_end`` / ``crashed_during``
  answer whether the bound server is down, when it recovers, and whether
  an execution window ``[start, end]`` is truncated by an outage.
* **attempt verdicts** — ``attempt_fails`` delivers the plan's seeded
  transient-failure draw for one request attempt; the dispatch point
  (batch completion for one-shot serving, prefill commit for generation)
  is the caller's contract, the randomness is the plan's.

Everything is a pure function of ``(plan, server_id, arguments)`` plus
monotone counters, so replays are bit-identical and a baseline run with
an empty plan is byte-identical to running without an injector at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.faults import FaultPlan
    from .instrument import EngineInstrumentation

#: Observers notified with every newly constructed injector (used by the
#: engine-trace sanitizer to learn fault windows; empty in normal runs).
_injector_hooks: List[Callable[["EngineFaultInjector"], None]] = []


class EngineFaultInjector:
    """One server's view of a :class:`FaultPlan`, as engine effects.

    Counters (``stretches``, ``stretched_seconds``, ``failures_injected``)
    are deterministic and read by chaos reports; with an
    :class:`EngineInstrumentation` attached they are also published as
    ``engine_faults_total{kind=...}`` counters.
    """

    __slots__ = ("plan", "server_id", "instrumentation", "stretches",
                 "stretched_seconds", "failures_injected")

    def __init__(self, plan: "FaultPlan", server_id: int = 0,
                 instrumentation: Optional["EngineInstrumentation"] = None,
                 ) -> None:
        self.plan = plan
        self.server_id = server_id
        self.instrumentation = instrumentation
        self.stretches = 0
        self.stretched_seconds = 0.0
        self.failures_injected = 0
        if _injector_hooks:
            for hook in list(_injector_hooks):
                hook(self)

    @property
    def empty(self) -> bool:
        return self.plan.empty

    # -- busy-window stretching -------------------------------------------

    def multiplier(self, now: float, label: Optional[str] = None) -> float:
        """Slowdown factor for work starting at ``now``.

        Latency spikes always apply; kernel stalls apply when the busy
        window's ``label`` matches the stall's ``name_contains``.
        """
        factor = self.plan.latency_multiplier(self.server_id, now)
        if label is not None and self.plan.stalls:
            factor *= self.plan.stall_multiplier(label, now)
        return factor

    def stretch(self, delay_s: float, now: float,
                label: Optional[str] = None) -> float:
        """Inflate a busy window starting at ``now`` (identity off-fault).

        The multiplier is sampled at the window *start* — the same
        convention the cluster simulator has always used — so the result
        is a pure function of ``(plan, now, delay_s)``.
        """
        factor = self.multiplier(now, label)
        if factor == 1.0:
            return delay_s
        stretched = delay_s * factor
        self.stretches += 1
        self.stretched_seconds += stretched - delay_s
        if self.instrumentation is not None:
            self.instrumentation.fault("stretch")
        return stretched

    # -- crash windows -----------------------------------------------------

    def crashed(self, now: float) -> bool:
        """Is the bound server down at ``now``?"""
        return self.plan.crashed(self.server_id, now)

    def crash_end(self, now: float) -> float:
        """Recovery time of the crash covering ``now`` (``now`` if none)."""
        return self.plan.crash_end(self.server_id, now)

    def crashed_during(self, start_s: float, end_s: float) -> Optional[float]:
        """Earliest crash moment truncating ``[start_s, end_s]``, or None."""
        return self.plan.crashed_during(self.server_id, start_s, end_s)

    # -- transient failures ------------------------------------------------

    def attempt_fails(self, req_id: int, attempt: int, now: float) -> bool:
        """Seeded verdict for one request attempt dispatched at ``now``."""
        hit = self.plan.attempt_fails(req_id, attempt, self.server_id, now)
        if hit:
            self.failures_injected += 1
            if self.instrumentation is not None:
                self.instrumentation.fault("attempt_failure")
        return hit
