#!/usr/bin/env python
"""Allocator walkthrough — the paper's Fig. 6 rendered as ASCII chunk maps.

Plans a BERT inference at length 200, then re-plans at 240, printing where
each of the largest tensors lands inside the 2 MB chunks, and compares the
four allocators on a small variable-length stream (Fig. 7 in miniature).

Run:  python examples/allocator_walkthrough.py
"""

from repro.graph import fuse_graph, tensor_usage_records
from repro.memory import (
    MB,
    CachingAllocator,
    GsocAllocator,
    NaiveAllocator,
    TurboAllocator,
    run_allocator_workload,
)
from repro.models import bert_base, build_encoder_graph


def render_chunks(allocator: TurboAllocator, top_n: int = 3) -> None:
    for chunk in allocator.chunks:
        header = f"   chunk {chunk.chunk_id} ({chunk.size / MB:.1f} MB): "
        if chunk.is_unused:
            print(header + "(idle)")
            continue
        largest = sorted(chunk.assignments, key=lambda a: -a.record.size)[:top_n]
        parts = [
            f"{a.record.name}@{a.offset // 1024}K ({a.record.size / MB:.2f} MB)"
            for a in largest
        ]
        extra = len(chunk.assignments) - len(largest)
        if extra > 0:
            parts.append(f"+{extra} more")
        print(header + ", ".join(parts))


def fig6_walkthrough() -> None:
    print("== Fig. 6 walkthrough: BERT request length 200 -> 240 ==")
    graph = fuse_graph(build_encoder_graph(bert_base()))
    allocator = TurboAllocator()
    for seq_len in (200, 240):
        records = tensor_usage_records(graph, {"batch": 1, "seq": seq_len})
        result = allocator.process_request(records)
        print(f"\n length {seq_len}: {len(records)} tensors, "
              f"{len(allocator.chunks)} chunks, "
              f"+{result.new_mb:.2f} MB newly allocated")
        render_chunks(allocator)


def allocator_faceoff() -> None:
    print("\n== allocator face-off on 20 variable-length requests ==")
    graph = fuse_graph(build_encoder_graph(bert_base()))
    import numpy as np

    rng = np.random.default_rng(5)
    lengths = rng.integers(5, 501, size=20)
    streams = [
        tensor_usage_records(graph, {"batch": 1, "seq": int(length)})
        for length in lengths
    ]
    print(f"   request lengths: {sorted(int(x) for x in lengths)}")
    print(f"   {'allocator':<10} {'max footprint (MB)':>19} "
          f"{'avg new MB/req':>15} {'stall (ms)':>11}")
    for allocator in (TurboAllocator(), GsocAllocator(), CachingAllocator(),
                      NaiveAllocator()):
        result = run_allocator_workload(allocator, streams)
        print(f"   {allocator.name:<10} {result.max_footprint_mb:>19.1f} "
              f"{result.avg_new_mb_per_request:>15.2f} "
              f"{result.total_stall_s * 1e3:>11.1f}")


if __name__ == "__main__":
    fig6_walkthrough()
    allocator_faceoff()
    print("\nallocator walkthrough complete.")
