#!/usr/bin/env python
"""Multi-server serving: scaling a Turbo-DP service across a GPU cluster.

The paper (§5) defers multi-server load balancing to "an upper-level load
balancer as the one in Nexus"; this demo builds that layer: a cluster of
simulated RTX 2060 servers, each running the Turbo runtime with the DP
batch scheduler, fed by different routing policies.

Run:  python examples/cluster_serving.py
"""

from repro.models import bert_base, build_encoder_graph
from repro.runtime import turbo_runtime, warmup_profile
from repro.serving import (
    DPBatchScheduler,
    RoutingPolicy,
    generate_requests,
    simulate_cluster,
)

RATE = 250        # req/s — ~3x a single server's capacity
DURATION_S = 6.0


def main() -> None:
    print("== profiling the per-server cost table ==")
    runtime = turbo_runtime(graph=build_encoder_graph(bert_base()))
    table = warmup_profile(runtime, max_batch=20, lengths=range(32, 513, 32))

    print(f"\n== scaling out at {RATE} req/s ==")
    print(f"   {'servers':>8} {'resp/s':>7} {'avg ms':>8} {'p95 ms':>8} {'stable':>7}")
    for servers in (1, 2, 4, 8):
        requests = generate_requests(RATE, DURATION_S, seed=8)
        metrics = simulate_cluster(
            requests, servers, DPBatchScheduler, table.cost,
            policy=RoutingPolicy.LEAST_WORK, duration_s=DURATION_S,
        )
        m = metrics.serving
        print(f"   {servers:>8} {m.response_throughput:>7.0f} "
              f"{m.latency.avg_ms:>8.1f} {m.latency.p95_ms:>8.1f} "
              f"{'yes' if m.stable else 'NO':>7}")

    print(f"\n== routing policies on 4 servers at {RATE} req/s ==")
    print(f"   {'policy':<14} {'resp/s':>7} {'avg ms':>8} {'balance':>8}")
    for policy in RoutingPolicy:
        requests = generate_requests(RATE, DURATION_S, seed=8)
        metrics = simulate_cluster(
            requests, 4, DPBatchScheduler, table.cost,
            policy=policy, duration_s=DURATION_S,
        )
        print(f"   {policy.value:<14} {metrics.serving.response_throughput:>7.0f} "
              f"{metrics.serving.latency.avg_ms:>8.1f} "
              f"{metrics.balance_ratio:>8.2f}")
    print("\ncluster demo complete.")


if __name__ == "__main__":
    main()
