#!/usr/bin/env python
"""Seq2Seq translation decoding with beam search (the paper's Decoder case).

Two halves:
 1. a *numeric* beam-search decode on a tiny randomly-initialized decoder —
    real tokens come out, and widening the beam never lowers the best
    hypothesis' score;
 2. the decoder *latency model* for the paper's full configuration (6
    layers, 16 heads, beam 4) comparing the Turbo and PyTorch serving
    loops over source lengths 28-137 (the Fig. 10 decoder sweep).

Run:  python examples/translation_decoder.py
"""

import numpy as np

from repro.gpusim import RTX_2060
from repro.models import (
    beam_search,
    build_decoder_step_graph,
    init_decoder_weights,
    seq2seq_decoder,
    tiny_seq2seq,
)
from repro.runtime import (
    DecoderRuntime,
    PYTORCH_CHARACTERISTICS,
    TURBO_CHARACTERISTICS,
)


def numeric_translation() -> None:
    print("== 1. numeric beam search (tiny decoder) ==")
    config = tiny_seq2seq()
    weights = init_decoder_weights(config, seed=1)
    rng = np.random.default_rng(3)
    for sentence in range(3):
        src_len = int(rng.integers(4, 9))
        memory = rng.normal(0, 0.5, (src_len, config.hidden_size)).astype(np.float32)
        hyp = beam_search(config, weights, memory, max_len=10)
        print(f"   source#{sentence} (len {src_len}) -> tokens {hyp.tokens} "
              f"(log-prob {hyp.score:.2f})")

    from dataclasses import replace

    memory = rng.normal(0, 0.5, (6, config.hidden_size)).astype(np.float32)
    greedy = beam_search(replace(config, beam_size=1), weights, memory, max_len=8)
    wide = beam_search(replace(config, beam_size=4), weights, memory, max_len=8)
    print(f"   beam=1 score {greedy.score:.3f} <= beam=4 score {wide.score:.3f}")
    assert wide.score >= greedy.score - 1e-9


def latency_model() -> None:
    print("\n== 2. decode latency model (paper config, simulated RTX 2060) ==")
    config = seq2seq_decoder()
    step_graph = build_decoder_step_graph(config)
    turbo = DecoderRuntime(step_graph, TURBO_CHARACTERISTICS, RTX_2060,
                           config.beam_size, step_overhead_s=0.1e-3)
    pytorch = DecoderRuntime(step_graph, PYTORCH_CHARACTERISTICS, RTX_2060,
                             config.beam_size, step_overhead_s=2.5e-3)
    print(f"   {'src len':>8} {'turbo (ms)':>11} {'pytorch (ms)':>13} {'speedup':>8}")
    for src_len in (28, 50, 80, 110, 137):
        t = turbo.decode_latency(src_len, src_len)
        p = pytorch.decode_latency(src_len, src_len)
        print(f"   {src_len:>8} {t * 1e3:>11.1f} {p * 1e3:>13.1f} {p / t:>7.2f}x")


if __name__ == "__main__":
    numeric_translation()
    latency_model()
    print("\ntranslation demo complete.")
