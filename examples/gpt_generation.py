#!/usr/bin/env python
"""GPT-style text generation serving (the paper's intro motivates GPT2).

Three views:
 1. real numeric generation on a tiny decoder-only model (greedy and
    temperature sampling);
 2. the prefill/decode latency split of generative serving — time to first
    token vs per-token latency — on a GPT2-small-like config;
 3. how the Turbo runtime changes both phases vs the PyTorch baseline.

Run:  python examples/gpt_generation.py
"""

import numpy as np

from repro.gpusim import RTX_2060
from repro.models import (
    build_decode_step_graph,
    build_prefill_graph,
    generate,
    gpt_small,
    init_gpt_weights,
    tiny_gpt,
)
from repro.runtime import (
    GenerationRuntime,
    PYTORCH_CHARACTERISTICS,
    TURBO_CHARACTERISTICS,
)


def numeric_generation() -> None:
    print("== 1. numeric generation (tiny GPT) ==")
    config = tiny_gpt()
    weights = init_gpt_weights(config, seed=2)
    prompt = np.array([5, 17, 42])
    greedy = generate(config, weights, prompt, max_new_tokens=8)
    print(f"   greedy:        {greedy}")
    for seed in (0, 1):
        sampled = generate(config, weights, prompt, max_new_tokens=8,
                           temperature=1.2, seed=seed)
        print(f"   sampled (s={seed}): {sampled}")


def latency_split() -> None:
    print("\n== 2. prefill vs decode (GPT2-small geometry, RTX 2060) ==")
    config = gpt_small()
    runtime = GenerationRuntime(
        build_prefill_graph(config), build_decode_step_graph(config),
        TURBO_CHARACTERISTICS, RTX_2060, step_overhead_s=0.1e-3,
    )
    print(f"   {'prompt':>7} {'TTFT (ms)':>10} {'per-token (ms)':>15} "
          f"{'gen 64 tok (ms)':>16} {'tok/s':>7}")
    for prompt_len in (32, 128, 512):
        ttft = runtime.prefill_latency(1, prompt_len)
        tpot = runtime.decode_step_latency(1, prompt_len)
        total = runtime.generate_latency(prompt_len, 64)
        tps = runtime.tokens_per_second(prompt_len, 64)
        print(f"   {prompt_len:>7} {ttft * 1e3:>10.2f} {tpot * 1e3:>15.2f} "
              f"{total * 1e3:>16.1f} {tps:>7.0f}")


def runtime_comparison() -> None:
    print("\n== 3. Turbo vs PyTorch generation loop ==")
    config = gpt_small()
    prefill = build_prefill_graph(config)
    decode = build_decode_step_graph(config)
    turbo = GenerationRuntime(prefill, decode, TURBO_CHARACTERISTICS,
                              RTX_2060, step_overhead_s=0.1e-3)
    pytorch = GenerationRuntime(prefill, decode, PYTORCH_CHARACTERISTICS,
                                RTX_2060, step_overhead_s=2.5e-3)
    for prompt_len, new in ((64, 64), (256, 128)):
        t = turbo.generate_latency(prompt_len, new)
        p = pytorch.generate_latency(prompt_len, new)
        print(f"   prompt {prompt_len:>3} + {new:>3} tokens: "
              f"turbo {t * 1e3:7.1f} ms vs pytorch {p * 1e3:7.1f} ms "
              f"({p / t:.2f}x)")


if __name__ == "__main__":
    numeric_generation()
    latency_split()
    runtime_comparison()
    print("\ngeneration demo complete.")
