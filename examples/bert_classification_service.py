#!/usr/bin/env python
"""A BERT text-classification service (the paper's §6.2 scenario).

Builds the full serving stack — warm-up cost profiling, message queue,
response cache, the DP batch scheduler (Algorithm 3) with the hungry
trigger policy — and drives it with a Poisson workload whose lengths
follow the paper's normal distribution on [5, 500].

Compares four configurations (PyTorch-NoBatch, Turbo-NoBatch,
Turbo-Naive-Batch, Turbo-DP-Batch) at one offered rate, then demonstrates
the response cache on a skewed request population.

Run:  python examples/bert_classification_service.py
"""

import numpy as np

from repro.models import bert_base, build_encoder_graph
from repro.runtime import pytorch_runtime, turbo_runtime, warmup_profile
from repro.serving import (
    DPBatchScheduler,
    NaiveBatchScheduler,
    NoBatchScheduler,
    ResponseCache,
    ServingConfig,
    generate_requests,
    simulate_serving,
)

OFFERED_RATE = 50  # req/s
DURATION_S = 8.0
MAX_BATCH = 20


def profile_runtimes():
    print("== warm-up: profiling cached_cost tables (Alg. 3 input) ==")
    graph = build_encoder_graph(bert_base())
    lengths = range(32, 513, 32)
    turbo_table = warmup_profile(turbo_runtime(graph=graph), MAX_BATCH, lengths)
    pytorch_table = warmup_profile(pytorch_runtime(graph=graph), MAX_BATCH, lengths)
    print(f"   profiled {len(turbo_table.lengths)} lengths x {MAX_BATCH} batch sizes"
          f" per runtime")
    return turbo_table, pytorch_table


def serve(turbo_table, pytorch_table) -> None:
    systems = [
        ("PyTorch-NoBatch", NoBatchScheduler(), pytorch_table),
        ("Turbo-NoBatch", NoBatchScheduler(), turbo_table),
        ("Turbo-Naive-Batch", NaiveBatchScheduler(), turbo_table),
        ("Turbo-DP-Batch", DPBatchScheduler(), turbo_table),
    ]
    print(f"\n== serving {OFFERED_RATE} req/s for {DURATION_S:.0f}s "
          f"(virtual time) ==")
    print(f"   {'system':<18} {'resp/s':>7} {'avg ms':>8} {'max ms':>8} {'stable':>7}")
    for name, scheduler, table in systems:
        requests = generate_requests(OFFERED_RATE, DURATION_S, seed=42)
        metrics = simulate_serving(
            requests, scheduler, table.cost,
            ServingConfig(max_batch=MAX_BATCH),
            duration_s=DURATION_S, system_name=name,
        )
        print(f"   {name:<18} {metrics.response_throughput:>7.0f} "
              f"{metrics.latency.avg_ms:>8.2f} {metrics.latency.max_ms:>8.2f} "
              f"{'yes' if metrics.stable else 'NO':>7}")


def demo_response_cache() -> None:
    print("\n== response cache on a skewed (Zipf-ish) request population ==")
    cache: ResponseCache[str] = ResponseCache(capacity=64)
    rng = np.random.default_rng(7)
    # 1000 requests over 200 distinct payloads, heavily skewed.
    payloads = rng.zipf(1.5, size=1000) % 200
    served_by_model = 0
    for payload in payloads:
        key = int(payload)
        if cache.get(key) is None:
            served_by_model += 1
            cache.put(key, f"label-{key % 3}")
    print(f"   1000 requests, {served_by_model} model evaluations, "
          f"hit rate {cache.hit_rate:.1%}")


def demo_text_classification() -> None:
    """End to end on real text: tokenizer -> encoder -> label."""
    from repro.models import init_encoder_weights, tiny_bert
    from repro.text import TextClassifier, WordPieceTokenizer, init_classifier_head

    print("\n== end-to-end text classification (tiny model) ==")
    corpus = [
        "the quick brown fox jumps over the lazy dog",
        "serving transformer models with low latency",
        "batching requests improves gpu utilization",
    ] * 4
    tokenizer = WordPieceTokenizer.train(corpus, vocab_size=95)
    config = tiny_bert()
    classifier = TextClassifier(
        tokenizer=tokenizer,
        config=config,
        weights=init_encoder_weights(config, seed=0),
        head=init_classifier_head(config.hidden_size, num_labels=3, seed=0),
    )
    texts = ["the lazy fox", "gpu serving with batching", "low latency models"]
    for text, label in zip(texts, classifier.classify(texts)):
        print(f"   {text!r} -> label {label}")


if __name__ == "__main__":
    turbo_table, pytorch_table = profile_runtimes()
    serve(turbo_table, pytorch_table)
    demo_response_cache()
    demo_text_classification()
    print("\nservice demo complete.")
