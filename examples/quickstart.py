#!/usr/bin/env python
"""Quickstart: accelerate a BERT inference with the Turbo runtime.

Mirrors the paper's usability pitch (§4.3): wrap an existing model and get
an end-to-end speedup without preprocessing or fixed-length constraints.

Three things happen below:
 1. a real (NumPy) BERT forward pass runs through the fused kernel path
    and is checked against the reference path;
 2. the Turbo runtime prices the same model on the simulated RTX 2060 and
    is compared with the PyTorch-like baseline across sequence lengths;
 3. the per-request memory plan is shown re-planning as the length changes;
 4. a small serving run is traced end-to-end and written out as Chrome
    trace JSON (open in chrome://tracing or Perfetto) plus a metrics dump;
 5. a chaos scenario crashes a replica mid-run and the resilience layer
    (retries + circuit breakers + rerouting) recovers goodput;
 6. the static-analysis layer (`python -m repro check`) verifies every
    model graph, memory plan and serving schedule and lints the tree.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.graph import fuse_graph, tensor_usage_records
from repro.memory import TurboAllocator
from repro.models import (
    bert_base,
    build_encoder_graph,
    encoder_forward,
    init_encoder_weights,
    tiny_bert,
)
from repro.runtime import pytorch_runtime, turbo_runtime


def numeric_check() -> None:
    print("== 1. numeric correctness (tiny BERT, fused vs reference) ==")
    config = tiny_bert()
    weights = init_encoder_weights(config, seed=0)
    token_ids = np.random.default_rng(0).integers(0, config.vocab_size, (2, 16))
    fused = encoder_forward(config, weights, token_ids, fused=True)
    reference = encoder_forward(config, weights, token_ids, fused=False)
    max_err = float(np.abs(fused - reference).max())
    print(f"   output shape {fused.shape}, max |fused - reference| = {max_err:.2e}")
    assert max_err < 1e-3


def latency_comparison() -> None:
    print("\n== 2. latency vs PyTorch baseline (simulated RTX 2060) ==")
    graph = build_encoder_graph(bert_base())
    turbo = turbo_runtime(graph=graph)
    baseline = pytorch_runtime(graph=graph)
    print(f"   kernel launches per inference: turbo={turbo.kernel_launch_count} "
          f"(fused) vs pytorch={baseline.kernel_launch_count}")
    print(f"   {'seq len':>8} {'turbo (ms)':>12} {'pytorch (ms)':>13} {'speedup':>8}")
    for seq_len in (16, 64, 128, 256, 500):
        t = turbo.latency(1, seq_len)
        p = baseline.latency(1, seq_len)
        print(f"   {seq_len:>8} {t * 1e3:>12.2f} {p * 1e3:>13.2f} {p / t:>7.2f}x")


def memory_replanning() -> None:
    print("\n== 3. sequence-length-aware memory planning (Alg. 1) ==")
    graph = fuse_graph(build_encoder_graph(bert_base()))
    allocator = TurboAllocator()
    for seq_len in (200, 240, 120, 500):
        records = tensor_usage_records(graph, {"batch": 1, "seq": seq_len})
        result = allocator.process_request(records)
        print(f"   seq {seq_len:>3}: {len(records)} tensors planned into "
              f"{len(allocator.chunks)} chunks, footprint "
              f"{result.footprint_mb:6.1f} MB, newly allocated "
              f"{result.new_mb:5.2f} MB")


def observability_trace() -> None:
    print("\n== 4. observability: trace a serving run ==")
    from repro.observability import MetricsRegistry, Tracer, run_traced_workload

    result = run_traced_workload(model="tiny", rate_per_s=120.0,
                                 duration_s=0.25, seed=0,
                                 tracer=Tracer(), registry=MetricsRegistry())
    result.tracer.save("trace.json")      # open in chrome://tracing / Perfetto
    result.registry.save("metrics.json")  # counters reconcile with result.serving
    print(f"   served {result.serving.completed}/{result.serving.offered} "
          f"requests in {result.serving.batches_executed} batches")
    print(f"   wrote trace.json ({len(result.tracer)} events) "
          f"and metrics.json ({len(result.registry)} series)")


def chaos_recovery() -> None:
    print("\n== 5. resilience: survive a replica crash under load ==")
    from repro.resilience import run_chaos

    report = run_chaos("smoke", seed=0)
    stats = report.chaos.serving.resilience
    print(f"   {report.chaos.serving.offered} requests on "
          f"{report.scenario.num_servers} servers; faults: 1 crash, "
          f"1 latency spike, 1 transient-failure window")
    print(f"   outcome: {report.chaos.serving.completed} completed, "
          f"{stats.retries} retries, {stats.dropped} dropped, "
          f"{len(report.breaker_transitions)} breaker transition(s)")
    print(f"   post-fault goodput {report.goodput_chaos:.1f} resp/s = "
          f"{report.recovery_ratio:.1%} of the fault-free baseline "
          f"({'recovered' if report.recovered else 'NOT recovered'})")
    assert report.recovered


def static_analysis() -> None:
    print("\n== 6. static analysis: verify graphs, plans and schedules ==")
    from repro.analysis import run_check

    report = run_check(families=("graph", "memory", "schedule"))
    counts = report.counts()
    print(f"   checked {report.checked['graphs']} graphs "
          f"({report.checked['fusions_verified']} fusions verified), "
          f"{report.checked['plans']} memory plans, "
          f"{report.checked['schedule_ops']} schedule ops")
    print(f"   {counts['error']} error(s), {counts['warning']} warning(s) "
          f"-- full sweep: python -m repro check")
    assert not report.has_errors


if __name__ == "__main__":
    numeric_check()
    latency_comparison()
    memory_replanning()
    observability_trace()
    chaos_recovery()
    static_analysis()
    print("\nquickstart complete.")
